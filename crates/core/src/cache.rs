//! Pattern-keyed frontier cache.
//!
//! Placement produces enormous numbers of congruent nets: the same pin
//! pattern at different offsets, scales, rotations and reflections. The
//! lookup-table query already canonicalizes away translation and the
//! dihedral symmetries, and both objectives are invariant under those
//! transforms, so the *winning topology ids* of a query depend only on
//! the canonical pattern key and the canonical gap vector. This module
//! caches exactly that: `(key, gaps) → winning ids`. The ids are indices
//! into the lookup table's per-degree CSR topology pool (stable for the
//! lifetime of a loaded table, and across save/load since v3 serializes
//! the arenas verbatim). On a hit the router re-scores just those pool
//! rows by dot product and materializes them, skipping the dominated
//! candidates entirely — and because the v3 score kernel's tie-breaking
//! is a pure function of `(key, gaps)`, the resulting frontier is
//! bit-identical to an uncached query.
//!
//! # Parallel service
//!
//! The cache is sharded so the read-mostly steady state scales across
//! batch-routing threads: hits take a shared lock on one shard, and
//! concurrent misses on different shards never contend. Three pieces of
//! contention engineering (DESIGN.md §14):
//!
//! * **Shard count auto-sizes to the machine** — `shards: 0` (the
//!   default) resolves to a power of two ≥ 4× `available_parallelism`,
//!   so the probability of two concurrent threads colliding on one
//!   shard's lock stays low no matter the core count; an explicit value
//!   is honored verbatim (tests pin 1/2/64).
//! * **Every shard is cache-line-padded** ([`crate::pad::CachePadded`])
//!   and carries its *own* hit/miss/contention counters, so one shard's
//!   counter traffic never invalidates another shard's line — the
//!   global-counter ping-pong the old layout paid on every probe from
//!   every core is gone. The adaptive-bypass state lives on its own
//!   padded line too: it is read on every route and written only at
//!   bypass and re-probe boundaries.
//! * **Contention is measured, not guessed** — lock acquisitions go
//!   through `try_read`/`try_write` first and count a failed attempt
//!   before falling back to the blocking path. The per-shard counters
//!   surface through [`ShardStats`], the aggregate through
//!   [`CacheStats`] and [`crate::ResilienceReport`], and the scaling
//!   bench (`BENCH_PR7.json`) uses them as its parallel-cache verdict.
//!
//! Each shard is bounded and evicts in FIFO order — congruence classes
//! in real placements are heavily skewed, so even a crude policy keeps
//! the hot classes resident.
//!
//! # Table epochs
//!
//! Cached values are winner ids **into a specific loaded table**: a hot
//! table reload (DESIGN.md §17) installs a new id space, so every entry
//! is stamped with the table epoch it was computed under. [`FrontierCache::get`]
//! treats an entry from another epoch as a miss, and
//! [`FrontierCache::insert_at`] drops inserts whose producing epoch is
//! no longer current — closing the race where a route that started on
//! the old table finishes after the swap and would otherwise poison the
//! cache with ids from a retired id space. [`FrontierCache::set_epoch`]
//! is the whole invalidation protocol: one atomic store, no sweep, no
//! lock on any shard.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};

use crate::pad::CachePadded;

/// How many misses a shard absorbs between adaptive-bypass judgments
/// once the warmup window has closed.
///
/// Judging sums per-shard counters (O(shards) atomic loads). During
/// warmup it runs on every miss — a one-time cost bounded by the warmup
/// window, which keeps the bypass decision exact at the boundary —
/// and afterwards only on this stride, so late retirement (a workload
/// whose reuse decays) is still detected without paying the sum on
/// every miss forever.
const JUDGE_STRIDE: u64 = 64;

/// Cache key: canonical pattern key plus canonical gap vector.
///
/// The pattern key encodes the degree, so keys never collide across
/// degrees even though gap-vector lengths differ.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pattern: u64,
    gaps: Box<[i64]>,
}

impl CacheKey {
    /// Builds a key from raw components. Prefer [`CacheKey::from_class`];
    /// this exists for tests and tools that synthesize keys directly.
    pub fn new(pattern: u64, gaps: &[i64]) -> Self {
        CacheKey {
            pattern,
            gaps: gaps.into(),
        }
    }

    /// The cache key of a classified net — the `(canonical pattern key,
    /// canonical gap vector)` pair that [`patlabor_geom::NetClass`]
    /// guarantees is constant across a congruence class. Using the class
    /// here and in the lookup table means the cache and the table can
    /// never disagree about which nets are congruent.
    pub fn from_class(class: &patlabor_geom::NetClass) -> Self {
        CacheKey::new(class.canonical_key(), class.canonical_gaps())
    }
}

/// Configuration for the frontier cache (see [`FrontierCache`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Master switch. Disabled, the router always evaluates every
    /// candidate topology; results are identical either way.
    pub enabled: bool,
    /// Total entry budget, split evenly across shards. Each entry is a
    /// short id list, so the default (64 Ki entries) costs a few MiB.
    pub capacity: usize,
    /// Number of independent shards. `0` (the default) auto-sizes to a
    /// power of two ≥ 4× the machine's `available_parallelism`, clamped
    /// to `[16, 512]` — enough shards that concurrent threads rarely
    /// collide on one lock, few enough that the padded per-shard state
    /// stays cheap. An explicit non-zero value is honored verbatim.
    pub shards: usize,
    /// Adaptive-bypass warmup window: after this many probes the hit
    /// rate is judged against [`CacheConfig::bypass_threshold_permille`]
    /// and the cache stops probing if it is not earning its keep (probe +
    /// insert overhead is a measured ~6% net loss on workloads with no
    /// congruence reuse). `0` disables the bypass — the cache then probes
    /// forever, as before.
    pub bypass_warmup: u64,
    /// Minimum hit rate, in permille (‰), the cache must sustain once the
    /// warmup window has elapsed. Expressed as an integer so the config
    /// stays `Eq`/`Hash`-able; `100` means 10%.
    pub bypass_threshold_permille: u16,
    /// How many probes a retired cache swallows before it re-arms for a
    /// fresh observation window. Workloads change phase — a cold
    /// miss-heavy warmup can be followed by a high-reuse ECO phase — so
    /// a bypass that never re-probes runs cache-off forever. After this
    /// many skipped probes the cache re-arms, judges the hit rate over
    /// the next [`CacheConfig::bypass_warmup`] probes *in isolation*
    /// (history before the window does not count against it), and either
    /// stays armed or retires again for another period. `0` restores the
    /// old sticky behavior: once bypassed, never probed again.
    pub bypass_reprobe_period: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: true,
            capacity: 64 * 1024,
            shards: 0,
            bypass_warmup: 1024,
            bypass_threshold_permille: 100,
            bypass_reprobe_period: 4096,
        }
    }
}

impl CacheConfig {
    /// A configuration with the cache switched off.
    pub fn disabled() -> Self {
        CacheConfig {
            enabled: false,
            ..CacheConfig::default()
        }
    }

    /// The shard count this configuration resolves to on this machine
    /// (the auto-sizing rule above for `shards: 0`, the explicit value
    /// otherwise, clamped to at least 1).
    pub fn resolved_shards(&self) -> usize {
        match self.shards {
            0 => {
                let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
                (threads * 4).next_power_of_two().clamp(16, 512)
            }
            n => n,
        }
    }
}

/// Hit/miss/contention counters and current occupancy, from
/// [`crate::PatLabor::cache_stats`] (aggregated over shards; the
/// per-shard view is [`ShardStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a full query.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Shards the cache resolved to (see [`CacheConfig::shards`]).
    pub shards: usize,
    /// Read-lock acquisitions that found the shard lock held and had to
    /// block (failed `try_read`). The scaling bench's contention signal:
    /// zero under a well-sized shard count.
    pub contended_reads: u64,
    /// Write-lock acquisitions that found the shard lock held and had to
    /// block (failed `try_write`).
    pub contended_writes: u64,
    /// Whether the adaptive bypass has retired the cache: the hit rate
    /// stayed below the configured threshold through the warmup window,
    /// so the router stopped probing (and inserting) entirely.
    pub bypassed: bool,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Contended lock acquisitions (read + write) as a fraction of all
    /// lookups — the headline contention metric of the scaling bench.
    pub fn contention_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.contended_reads + self.contended_writes) as f64 / total as f64
        }
    }
}

/// One shard's counters and occupancy ([`FrontierCache::shard_stats`]):
/// the unaggregated view, so a hot shard (skewed key distribution) or a
/// contended one shows up instead of averaging away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Lookups this shard answered.
    pub hits: u64,
    /// Lookups that missed in this shard.
    pub misses: u64,
    /// Entries resident in this shard.
    pub entries: usize,
    /// Failed `try_read` acquisitions on this shard's lock.
    pub contended_reads: u64,
    /// Failed `try_write` acquisitions on this shard's lock.
    pub contended_writes: u64,
}

#[derive(Debug, Default)]
struct Shard {
    /// Values are `(table_epoch, winner ids)`: the ids only make sense
    /// against the table generation they were scored under.
    map: HashMap<CacheKey, (u64, Arc<[u32]>)>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<CacheKey>,
}

/// One shard's complete state: the lock plus this shard's own counters,
/// padded as a unit so no two shards share a cache-line pair and counter
/// updates stay local to the shard's line.
#[derive(Debug, Default)]
struct ShardState {
    lock: RwLock<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
    contended_reads: AtomicU64,
    contended_writes: AtomicU64,
}

impl ShardState {
    /// Shared lock, counting a failed fast path as contention.
    fn read(&self) -> RwLockReadGuard<'_, Shard> {
        match self.lock.try_read() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.contended_reads.fetch_add(1, Ordering::Relaxed);
                self.lock.read().expect("cache lock poisoned")
            }
            Err(TryLockError::Poisoned(e)) => panic!("cache lock poisoned: {e}"),
        }
    }

    /// Exclusive lock, counting a failed fast path as contention.
    fn write(&self) -> RwLockWriteGuard<'_, Shard> {
        match self.lock.try_write() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.contended_writes.fetch_add(1, Ordering::Relaxed);
                self.lock.write().expect("cache lock poisoned")
            }
            Err(TryLockError::Poisoned(e)) => panic!("cache lock poisoned: {e}"),
        }
    }

    fn stats(&self) -> ShardStats {
        ShardStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.read().map.len(),
            contended_reads: self.contended_reads.load(Ordering::Relaxed),
            contended_writes: self.contended_writes.load(Ordering::Relaxed),
        }
    }
}

/// A bounded, sharded map from canonical net classes to winning topology
/// ids. See the module docs for the correctness argument and the
/// contention engineering.
#[derive(Debug)]
pub struct FrontierCache {
    shards: Box<[CachePadded<ShardState>]>,
    per_shard_cap: usize,
    bypass_warmup: u64,
    bypass_threshold_permille: u64,
    bypass_reprobe_period: u64,
    /// On its own padded line: read on every route, written rarely (at
    /// re-probe boundaries), and must not ride any shard's counter line.
    bypass: CachePadded<BypassState>,
    /// The current table epoch (see the module docs). Read on every
    /// probe and insert, written only by a hot reload, so it rides its
    /// own padded line rather than any shard's counters.
    epoch: CachePadded<AtomicU64>,
}

/// The adaptive bypass's state, padded as a unit.
#[derive(Debug, Default)]
struct BypassState {
    /// The decision: true while the cache is retired.
    bypassed: AtomicBool,
    /// Whether the current observation window has closed (switches
    /// judging from every-miss to strided).
    warmed: AtomicBool,
    /// Probes skipped while bypassed; crossing a multiple of the
    /// re-probe period re-arms the cache. Monotone — never reset — so
    /// exactly one thread observes each boundary.
    skipped: AtomicU64,
    /// Baseline subtracted from the cumulative hit counter: judgments
    /// are about the current observation window, not all history, so a
    /// cold warmup phase cannot condemn a later high-reuse phase.
    base_hits: AtomicU64,
    /// Baseline subtracted from the cumulative probe total.
    base_total: AtomicU64,
}

impl FrontierCache {
    /// Creates an empty cache; `config.enabled` is the caller's concern.
    pub fn new(config: &CacheConfig) -> Self {
        let shards = config.resolved_shards().max(1);
        FrontierCache {
            shards: (0..shards).map(|_| CachePadded::default()).collect(),
            per_shard_cap: (config.capacity / shards).max(1),
            bypass_warmup: config.bypass_warmup,
            bypass_threshold_permille: config.bypass_threshold_permille as u64,
            bypass_reprobe_period: config.bypass_reprobe_period,
            bypass: CachePadded::default(),
            epoch: CachePadded::default(),
        }
    }

    /// The table epoch entries are currently validated against.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Installs a new table epoch, logically invalidating every resident
    /// entry at once: stamped values from older epochs read as misses
    /// and late inserts from older epochs are dropped. Called by
    /// [`crate::Engine::reload_table`] after the table swap commits.
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::Release);
    }

    /// The shard count this cache resolved to.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether the adaptive bypass is currently tripped. The insert path
    /// consults this directly; the probe path goes through
    /// [`FrontierCache::skip_probe`], which also drives the periodic
    /// re-arm. With `bypass_reprobe_period == 0` the flag is sticky as
    /// before; otherwise it clears at each re-probe boundary and is
    /// re-set only if the fresh observation window fails the threshold.
    pub fn bypassed(&self) -> bool {
        self.bypass.bypassed.load(Ordering::Relaxed)
    }

    /// The router's probe gate: `true` means "do not probe this route".
    ///
    /// While the bypass is tripped, skipped probes are counted; every
    /// `bypass_reprobe_period`-th one re-arms the cache and opens a fresh
    /// observation window (the cumulative counters at that instant become
    /// the window baseline, so the judgment that follows sees only the
    /// window's own hit rate). A workload that flipped from miss-heavy to
    /// high-reuse therefore gets its cache back one period later, while a
    /// genuinely reuse-free workload pays one warmup window of probe
    /// overhead per period and retires again.
    pub fn skip_probe(&self) -> bool {
        if !self.bypassed() {
            return false;
        }
        if self.bypass_reprobe_period == 0 {
            return true; // sticky legacy behavior
        }
        let skipped = self.bypass.skipped.fetch_add(1, Ordering::Relaxed) + 1;
        if !skipped.is_multiple_of(self.bypass_reprobe_period) {
            return true;
        }
        // This thread crossed the period boundary (the counter is
        // monotone, so exactly one thread sees each multiple): open a
        // fresh observation window and re-arm.
        let (mut hits, mut misses) = (0u64, 0u64);
        for shard in self.shards.iter() {
            hits += shard.hits.load(Ordering::Relaxed);
            misses += shard.misses.load(Ordering::Relaxed);
        }
        self.bypass.base_hits.store(hits, Ordering::Relaxed);
        self.bypass.base_total.store(hits + misses, Ordering::Relaxed);
        self.bypass.warmed.store(false, Ordering::Relaxed);
        self.bypass.bypassed.store(false, Ordering::Relaxed);
        false
    }

    /// Re-judges the hit rate after a miss. Only misses can push the rate
    /// below the floor, so this is not called on hits. The tally sums
    /// per-shard counters, so it runs on every miss only until the
    /// warmup window closes (keeping the decision exact at the boundary)
    /// and on the [`JUDGE_STRIDE`] afterwards. Counter reads are relaxed:
    /// an off-by-a-few probe count merely shifts the decision by a few
    /// nets.
    fn judge_hit_rate(&self, shard_misses: u64) {
        if self.bypass_warmup == 0 || self.bypassed() {
            return;
        }
        if self.bypass.warmed.load(Ordering::Relaxed)
            && !shard_misses.is_multiple_of(JUDGE_STRIDE)
        {
            return;
        }
        let (mut cum_hits, mut cum_misses) = (0u64, 0u64);
        for shard in self.shards.iter() {
            cum_hits += shard.hits.load(Ordering::Relaxed);
            cum_misses += shard.misses.load(Ordering::Relaxed);
        }
        // Judge the current observation window, not all history: the
        // baselines are zero until the first re-probe re-arm snapshots
        // the counters, so the initial warmup behaves as before.
        let hits = cum_hits.saturating_sub(self.bypass.base_hits.load(Ordering::Relaxed));
        let total = (cum_hits + cum_misses)
            .saturating_sub(self.bypass.base_total.load(Ordering::Relaxed));
        if total >= self.bypass_warmup {
            self.bypass.warmed.store(true, Ordering::Relaxed);
            if hits * 1000 < self.bypass_threshold_permille * total {
                self.bypass.bypassed.store(true, Ordering::Relaxed);
            }
        }
    }

    fn shard(&self, key: &CacheKey) -> &ShardState {
        // Multiply between folds (not just XOR) so `pattern == gaps[0]`
        // cannot cancel itself out, then avalanche: the shard index is
        // the hash's LOW bits, and a plain FNV-style multiply only pushes
        // entropy upward — without the final mixdown, structured keys
        // collapse onto a handful of shards (observed: every hot key of
        // one parity landing in a single shard).
        let mut h = key.pattern ^ (key.gaps.len() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for &g in key.gaps.iter() {
            h = (h.wrapping_mul(0x100_0000_01b3)) ^ (g as u64);
        }
        // splitmix64 finalizer: folds the high bits back down.
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        let n = self.shards.len();
        // Auto-sized counts are powers of two (mask); explicit ones may
        // not be (modulo).
        let index = if n.is_power_of_two() {
            (h as usize) & (n - 1)
        } else {
            (h % n as u64) as usize
        };
        &self.shards[index]
    }

    /// Looks up a winning-id list, bumping the owning shard's hit/miss
    /// counters. An entry stamped with a different table epoch is a
    /// miss: its ids index a retired table's candidate pool.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<[u32]>> {
        let epoch = self.epoch();
        let state = self.shard(key);
        let shard = state.read();
        match shard.map.get(key) {
            Some((stamp, ids)) if *stamp == epoch => {
                let ids = Arc::clone(ids);
                drop(shard);
                state.hits.fetch_add(1, Ordering::Relaxed);
                Some(ids)
            }
            _ => {
                drop(shard);
                let misses = state.misses.fetch_add(1, Ordering::Relaxed) + 1;
                self.judge_hit_rate(misses);
                None
            }
        }
    }

    /// Inserts a winning-id list at the current table epoch, evicting
    /// the oldest entry of the target shard when it is full.
    ///
    /// A concurrent duplicate insert (two threads missing on the same key
    /// at once) overwrites with an equal value and is harmless.
    pub fn insert(&self, key: CacheKey, ids: Arc<[u32]>) {
        self.insert_at(key, ids, self.epoch());
    }

    /// [`FrontierCache::insert`] for a producer that snapshotted the
    /// table at `epoch`: when a reload has moved the cache past that
    /// epoch the insert is dropped — a route that started on the old
    /// table must not publish old-id-space winners into the new epoch.
    pub fn insert_at(&self, key: CacheKey, ids: Arc<[u32]>, epoch: u64) {
        if epoch != self.epoch() {
            return;
        }
        let mut shard = self.shard(&key).write();
        if shard.map.insert(key.clone(), (epoch, ids)).is_none() {
            if shard.map.len() > self.per_shard_cap {
                if let Some(oldest) = shard.order.pop_front() {
                    shard.map.remove(&oldest);
                }
            }
            shard.order.push_back(key);
        }
    }

    /// Asserts the structural invariants of every shard: `map` and
    /// `order` track the same key set (same length, no duplicate order
    /// entries, every queued key resident) and occupancy never exceeds
    /// the per-shard capacity. Test-only; concurrency tests call it after
    /// hammering the cache from many threads.
    #[cfg(test)]
    fn assert_shards_consistent(&self) {
        for (i, state) in self.shards.iter().enumerate() {
            let shard = state.read();
            assert!(
                shard.map.len() <= self.per_shard_cap,
                "shard {i}: occupancy {} exceeds capacity {}",
                shard.map.len(),
                self.per_shard_cap
            );
            assert_eq!(
                shard.map.len(),
                shard.order.len(),
                "shard {i}: map and eviction queue disagree on size"
            );
            let queued: std::collections::HashSet<&CacheKey> = shard.order.iter().collect();
            assert_eq!(
                queued.len(),
                shard.order.len(),
                "shard {i}: eviction queue holds duplicate keys"
            );
            for key in &shard.order {
                assert!(
                    shard.map.contains_key(key),
                    "shard {i}: queued key missing from map"
                );
            }
        }
    }

    /// Aggregated counters and occupancy (per-shard sums).
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats {
            shards: self.shards.len(),
            bypassed: self.bypassed(),
            ..CacheStats::default()
        };
        for shard in self.shards.iter() {
            let s = shard.stats();
            stats.hits += s.hits;
            stats.misses += s.misses;
            stats.entries += s.entries;
            stats.contended_reads += s.contended_reads;
            stats.contended_writes += s.contended_writes;
        }
        stats
    }

    /// The unaggregated per-shard counters, indexed by shard.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: u64, gaps: &[i64]) -> CacheKey {
        CacheKey::new(p, gaps)
    }

    /// Regression for the shard-hash collapse: keys whose first gap
    /// equals the pattern (common for canonical classes) must still
    /// spread across shards. The pre-avalanche hash XOR-cancelled
    /// `pattern ^ ... ^ gaps[0]` and masked the low bits of an FNV
    /// multiply, landing every same-parity key in one shard.
    #[test]
    fn structured_keys_spread_across_shards() {
        let cache = FrontierCache::new(&CacheConfig {
            capacity: 4096,
            shards: 64,
            ..CacheConfig::default()
        });
        for i in 0..64u64 {
            for parity in 0..2i64 {
                cache.insert(key(i, &[i as i64, parity]), vec![0].into());
            }
        }
        let occupied = cache
            .shard_stats()
            .iter()
            .filter(|s| s.entries > 0)
            .count();
        // 128 structured keys over 64 shards: demand a real spread, not
        // the 1-2 shards the cancelling hash produced.
        assert!(occupied >= 32, "only {occupied}/64 shards occupied");
    }

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let cache = FrontierCache::new(&CacheConfig::default());
        let k = key(42, &[1, 2, 3]);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), vec![7, 9].into());
        assert_eq!(cache.get(&k).as_deref(), Some(&[7u32, 9][..]));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        // Single-threaded traffic never contends.
        assert_eq!((stats.contended_reads, stats.contended_writes), (0, 0));
        assert_eq!(stats.contention_rate(), 0.0);
    }

    #[test]
    fn auto_shards_are_a_power_of_two_sized_to_the_machine() {
        let config = CacheConfig::default();
        assert_eq!(config.shards, 0, "default is auto");
        let resolved = config.resolved_shards();
        assert!(resolved.is_power_of_two());
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        assert!(resolved >= (threads * 4).min(512) || resolved == 512);
        assert!((16..=512).contains(&resolved));
        let cache = FrontierCache::new(&config);
        assert_eq!(cache.shard_count(), resolved);
        assert_eq!(cache.stats().shards, resolved);
        // Explicit values are honored verbatim, power of two or not.
        for explicit in [1usize, 2, 3, 64] {
            let cache = FrontierCache::new(&CacheConfig {
                shards: explicit,
                ..CacheConfig::default()
            });
            assert_eq!(cache.shard_count(), explicit);
        }
    }

    #[test]
    fn same_pattern_different_gaps_are_distinct() {
        let cache = FrontierCache::new(&CacheConfig::default());
        cache.insert(key(1, &[5, 5]), vec![0].into());
        assert!(cache.get(&key(1, &[5, 6])).is_none());
        assert!(cache.get(&key(1, &[5, 5])).is_some());
    }

    #[test]
    fn fifo_eviction_bounds_each_shard() {
        let config = CacheConfig {
            capacity: 4,
            shards: 1,
            ..CacheConfig::default()
        };
        let cache = FrontierCache::new(&config);
        for i in 0..20u64 {
            cache.insert(key(i, &[i as i64]), vec![i as u32].into());
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 4, "shard stays at capacity");
        // Newest entry survives, oldest is gone.
        assert!(cache.get(&key(19, &[19])).is_some());
        assert!(cache.get(&key(0, &[0])).is_none());
    }

    #[test]
    fn duplicate_insert_does_not_grow_order_queue() {
        let config = CacheConfig {
            capacity: 2,
            shards: 1,
            ..CacheConfig::default()
        };
        let cache = FrontierCache::new(&config);
        let k = key(3, &[1]);
        for _ in 0..10 {
            cache.insert(k.clone(), vec![1].into());
        }
        cache.insert(key(4, &[2]), vec![2].into());
        cache.insert(key(5, &[3]), vec![3].into());
        // k was inserted first and must be the first evicted despite the
        // repeated overwrites.
        assert_eq!(cache.stats().entries, 2);
        assert!(cache.get(&k).is_none());
    }

    #[test]
    fn epoch_bump_invalidates_resident_entries() {
        let cache = FrontierCache::new(&CacheConfig::default());
        let k = key(11, &[4, 2]);
        cache.insert(k.clone(), vec![1, 2].into());
        assert_eq!(cache.epoch(), 0);
        assert!(cache.get(&k).is_some());
        cache.set_epoch(1);
        // Same resident bytes, but the ids index a retired table: miss.
        assert!(cache.get(&k).is_none());
        // Re-inserting at the new epoch makes the key live again.
        cache.insert(k.clone(), vec![3].into());
        assert_eq!(cache.get(&k).as_deref(), Some(&[3u32][..]));
    }

    #[test]
    fn insert_at_stale_epoch_is_dropped() {
        let cache = FrontierCache::new(&CacheConfig::default());
        let k = key(12, &[1]);
        cache.set_epoch(5);
        // A producer that snapshotted the table at epoch 4 must not
        // publish into epoch 5's id space.
        cache.insert_at(k.clone(), vec![9].into(), 4);
        assert!(cache.get(&k).is_none());
        assert_eq!(cache.stats().entries, 0);
        cache.insert_at(k.clone(), vec![9].into(), 5);
        assert_eq!(cache.get(&k).as_deref(), Some(&[9u32][..]));
    }

    /// Overwrite-heavy workload: interleaving fresh inserts with repeated
    /// overwrites of resident keys must never push a shard past its
    /// capacity or desynchronize `map` from the eviction queue — at every
    /// shard count the auto-sizing can resolve to, including the
    /// degenerate single shard and a count far above the key cardinality.
    #[test]
    fn overwrite_heavy_occupancy_stays_bounded() {
        for shards in [1usize, 2, 64] {
            let config = CacheConfig {
                capacity: 6,
                shards,
                ..CacheConfig::default()
            };
            let cache = FrontierCache::new(&config);
            for round in 0..50u64 {
                // A fresh key per round...
                cache.insert(key(round, &[round as i64]), vec![round as u32].into());
                // ...then a storm of overwrites across the whole key
                // history, including keys that were already evicted (those
                // re-enter as fresh inserts and must re-queue exactly
                // once).
                for k in 0..=round {
                    cache.insert(key(k, &[k as i64]), vec![(k + round) as u32].into());
                }
                cache.assert_shards_consistent();
            }
            let stats = cache.stats();
            // Per-shard capacity is max(6/shards, 1), so total occupancy
            // is bounded by shards × per-shard cap.
            let bound = (6usize / shards).max(1) * shards;
            assert!(
                stats.entries <= bound,
                "shards {shards}: occupancy {} > bound {bound}",
                stats.entries
            );
            assert!(stats.entries > 0);
        }
    }

    /// Concurrent miss-storm: many threads discover the same keys missing
    /// and insert them simultaneously, across the shard counts the
    /// auto-sizing spans {1, 2, 64}, with the adaptive bypass armed so it
    /// flips mid-run (the threshold is unreachable for this storm).
    /// Duplicate concurrent inserts of one key must leave `order`/`map`
    /// consistent (exactly one queue entry per resident key), reads
    /// during the storm must never see torn state, and the flip must be
    /// sticky and observable in the stats.
    #[test]
    fn concurrent_miss_storm_keeps_shards_consistent() {
        use std::sync::Arc;

        for shards in [1usize, 2, 64] {
            let config = CacheConfig {
                capacity: 64,
                shards,
                // Armed mid-storm: 8 threads × 400+ probes blow far past
                // the window while the threads are still running, and a
                // 100% floor guarantees the flip.
                bypass_warmup: 512,
                bypass_threshold_permille: 1000,
                ..CacheConfig::default()
            };
            let cache = Arc::new(FrontierCache::new(&config));
            let threads = 8;
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let cache = Arc::clone(&cache);
                    scope.spawn(move || {
                        for i in 0..400u64 {
                            // A small key space so every key is inserted by
                            // several threads at once.
                            let k = key(i % 16, &[(i % 16) as i64, t as i64 % 2]);
                            if cache.get(&k).is_none() {
                                cache.insert(k.clone(), vec![t as u32, i as u32].into());
                            }
                            // Occasional fresh keys force evictions under
                            // the same contention.
                            if i % 37 == 0 {
                                cache.insert(
                                    key(1000 + t as u64 * 1000 + i, &[i as i64]),
                                    vec![0].into(),
                                );
                            }
                        }
                    });
                }
            });
            cache.assert_shards_consistent();
            let stats = cache.stats();
            assert_eq!(stats.shards, shards);
            // Any hot key still resident must replay a well-formed id list
            // (no torn values from racing duplicate inserts), and the storm
            // must actually have exercised both paths.
            let mut resident = 0;
            for i in 0..16u64 {
                for g in 0..2i64 {
                    if let Some(ids) = cache.get(&key(i, &[i as i64, g])) {
                        resident += 1;
                        assert_eq!(ids.len(), 2, "torn value for hot key ({i}, {g})");
                    }
                }
            }
            assert!(resident > 0, "shards {shards}: the whole hot set was evicted");
            assert!(
                stats.hits > 0 && stats.misses > 0,
                "shards {shards}: hits {} misses {}",
                stats.hits,
                stats.misses
            );
            // The bypass flipped mid-storm (warmup 512 < total probes,
            // floor 100% unreachable) and stayed flipped.
            assert!(
                cache.bypassed(),
                "shards {shards}: bypass must flip mid-run ({} probes)",
                stats.hits + stats.misses
            );
            assert!(cache.stats().bypassed);
        }
    }

    /// The contention counters actually count: hammer one shard's write
    /// lock and demand the failed-fast-path tally shows up. Contention is
    /// forced deterministically — one thread holds the shard lock while
    /// another attempts entry — because a statistical N-thread hammer
    /// never collides on a single-core machine (the critical section is
    /// shorter than a timeslice).
    #[test]
    fn contended_locks_are_counted() {
        let cache = FrontierCache::new(&CacheConfig {
            shards: 1,
            capacity: 1024,
            ..CacheConfig::default()
        });
        let state = &cache.shards[0];

        // A held read lock forces the insert's try_write to fail.
        let guard = state.read();
        std::thread::scope(|scope| {
            scope.spawn(|| cache.insert(key(1, &[1]), vec![1].into()));
            while state.contended_writes.load(Ordering::Relaxed) == 0 {
                std::thread::yield_now();
            }
            drop(guard);
        });

        // A held write lock forces the probe's try_read to fail.
        let guard = state.write();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _ = cache.get(&key(1, &[1]));
            });
            while state.contended_reads.load(Ordering::Relaxed) == 0 {
                std::thread::yield_now();
            }
            drop(guard);
        });

        let stats = cache.stats();
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), 1);
        assert_eq!(per_shard[0].contended_writes, stats.contended_writes);
        assert_eq!(per_shard[0].contended_reads, stats.contended_reads);
        assert!(stats.contended_writes > 0 && stats.contended_reads > 0);
        assert!(stats.contention_rate() > 0.0);
    }

    #[test]
    fn bypass_fires_after_a_cold_warmup_window() {
        let config = CacheConfig {
            bypass_warmup: 32,
            bypass_threshold_permille: 100,
            shards: 1,
            ..CacheConfig::default()
        };
        let cache = FrontierCache::new(&config);
        for i in 0..31u64 {
            assert!(cache.get(&key(i, &[i as i64])).is_none());
            assert!(!cache.bypassed(), "must not fire before the window");
        }
        assert!(cache.get(&key(31, &[31])).is_none());
        assert!(cache.bypassed(), "32 misses, 0 hits: below 10%");
        assert!(cache.stats().bypassed);
    }

    #[test]
    fn bypass_spares_a_cache_that_earns_its_keep() {
        let config = CacheConfig {
            bypass_warmup: 32,
            bypass_threshold_permille: 100,
            ..CacheConfig::default()
        };
        let cache = FrontierCache::new(&config);
        let hot = key(7, &[7]);
        cache.insert(hot.clone(), vec![1].into());
        // 1 hit per 4 probes = 250‰, comfortably above the 100‰ floor.
        for i in 0..200u64 {
            if i % 4 == 0 {
                assert!(cache.get(&hot).is_some());
            } else {
                cache.get(&key(1000 + i, &[i as i64]));
            }
        }
        assert!(!cache.bypassed());
    }

    /// Drives the cache the way the router's probe+insert sites do: ask
    /// [`FrontierCache::skip_probe`] first, and on a miss insert iff the
    /// bypass is not tripped.
    fn probe_like_router(cache: &FrontierCache, k: CacheKey) -> bool {
        if cache.skip_probe() {
            return false;
        }
        let hit = cache.get(&k).is_some();
        if !hit && !cache.bypassed() {
            cache.insert(k, vec![1].into());
        }
        hit
    }

    /// Satellite regression: the bypass must not be sticky across a
    /// workload phase change. A cold miss-heavy phase trips it; once the
    /// re-probe period elapses, a high-reuse phase must win the cache
    /// back — and the window judgment must not hold the cold history
    /// against it.
    #[test]
    fn reprobe_rearms_after_a_workload_flip() {
        let config = CacheConfig {
            bypass_warmup: 16,
            bypass_threshold_permille: 500,
            bypass_reprobe_period: 8,
            shards: 1,
            capacity: 1024,
            ..CacheConfig::default()
        };
        let cache = FrontierCache::new(&config);
        // Phase 1: pure misses through the warmup window → retired.
        for i in 0..16u64 {
            assert!(!probe_like_router(&cache, key(i, &[i as i64])));
        }
        assert!(cache.bypassed(), "cold phase must trip the bypass");
        // Phase 2: the workload flips to a single hot class. The first 7
        // probes are swallowed; the 8th crosses the period and re-arms.
        for _ in 0..7 {
            assert!(cache.skip_probe(), "within the period probes are skipped");
        }
        assert!(!cache.skip_probe(), "period boundary must re-arm");
        assert!(!cache.bypassed());
        // Hot phase: 3 hits per miss (750‰), comfortably above the 500‰
        // floor — the observation window closes with the cache still
        // armed even though the cumulative history is well below it.
        let hot = key(999, &[9]);
        cache.insert(hot.clone(), vec![1].into());
        for i in 0..24u64 {
            if i % 4 == 0 {
                probe_like_router(&cache, key(50_000 + i, &[i as i64]));
            } else {
                assert!(probe_like_router(&cache, hot.clone()), "hot class must hit");
            }
        }
        assert!(
            !cache.bypassed(),
            "a high-reuse window must keep the cache armed despite cold history"
        );
        assert!(!cache.skip_probe(), "an armed cache keeps probing");
    }

    /// The flip side: a workload that is still reuse-free after a re-arm
    /// must retire the cache again once the fresh window closes.
    #[test]
    fn reprobe_retires_again_when_reuse_never_comes() {
        let config = CacheConfig {
            bypass_warmup: 16,
            bypass_threshold_permille: 500,
            bypass_reprobe_period: 8,
            shards: 1,
            capacity: 1024,
            ..CacheConfig::default()
        };
        let cache = FrontierCache::new(&config);
        let mut fresh = 0u64;
        let mut unique = move || {
            fresh += 1;
            key(100_000 + fresh, &[fresh as i64])
        };
        for _ in 0..16 {
            probe_like_router(&cache, unique());
        }
        assert!(cache.bypassed());
        // Burn one period of skips, then feed the re-armed window more
        // unique keys: it must fail the threshold and retire again.
        for _ in 0..8 {
            let _ = cache.skip_probe();
        }
        assert!(!cache.bypassed(), "re-armed at the boundary");
        for _ in 0..16 {
            probe_like_router(&cache, unique());
        }
        assert!(cache.bypassed(), "a reuse-free window must re-retire the cache");
    }

    #[test]
    fn zero_reprobe_period_keeps_the_bypass_sticky() {
        let config = CacheConfig {
            bypass_warmup: 8,
            bypass_threshold_permille: 1000,
            bypass_reprobe_period: 0,
            shards: 1,
            ..CacheConfig::default()
        };
        let cache = FrontierCache::new(&config);
        for i in 0..8u64 {
            probe_like_router(&cache, key(i, &[i as i64]));
        }
        assert!(cache.bypassed());
        for _ in 0..10_000 {
            assert!(cache.skip_probe(), "period 0 must never re-arm");
        }
        assert!(cache.bypassed());
    }

    #[test]
    fn zero_warmup_disables_the_bypass() {
        let config = CacheConfig {
            bypass_warmup: 0,
            bypass_threshold_permille: 1000,
            ..CacheConfig::default()
        };
        let cache = FrontierCache::new(&config);
        for i in 0..500u64 {
            cache.get(&key(i, &[i as i64]));
        }
        assert!(!cache.bypassed(), "warmup 0 must mean never bypass");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let config = CacheConfig {
            shards: 0,
            capacity: 0,
            ..CacheConfig::default()
        };
        let cache = FrontierCache::new(&config);
        cache.insert(key(1, &[1]), vec![1].into());
        assert!(cache.get(&key(1, &[1])).is_some());
    }
}
