//! Pattern-keyed frontier cache.
//!
//! Placement produces enormous numbers of congruent nets: the same pin
//! pattern at different offsets, scales, rotations and reflections. The
//! lookup-table query already canonicalizes away translation and the
//! dihedral symmetries, and both objectives are invariant under those
//! transforms, so the *winning topology ids* of a query depend only on
//! the canonical pattern key and the canonical gap vector. This module
//! caches exactly that: `(key, gaps) → winning ids`. The ids are indices
//! into the lookup table's per-degree CSR topology pool (stable for the
//! lifetime of a loaded table, and across save/load since v3 serializes
//! the arenas verbatim). On a hit the router re-scores just those pool
//! rows by dot product and materializes them, skipping the dominated
//! candidates entirely — and because the v3 score kernel's tie-breaking
//! is a pure function of `(key, gaps)`, the resulting frontier is
//! bit-identical to an uncached query.
//!
//! The cache is sharded (`RwLock<HashMap>` per shard) so the read-mostly
//! steady state scales across batch-routing threads: hits take a shared
//! lock on one shard, and concurrent misses on different shards never
//! contend. Each shard is bounded and evicts in FIFO order — congruence
//! classes in real placements are heavily skewed, so even a crude policy
//! keeps the hot classes resident.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Cache key: canonical pattern key plus canonical gap vector.
///
/// The pattern key encodes the degree, so keys never collide across
/// degrees even though gap-vector lengths differ.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pattern: u64,
    gaps: Box<[i64]>,
}

impl CacheKey {
    /// Builds a key from raw components. Prefer [`CacheKey::from_class`];
    /// this exists for tests and tools that synthesize keys directly.
    pub fn new(pattern: u64, gaps: &[i64]) -> Self {
        CacheKey {
            pattern,
            gaps: gaps.into(),
        }
    }

    /// The cache key of a classified net — the `(canonical pattern key,
    /// canonical gap vector)` pair that [`patlabor_geom::NetClass`]
    /// guarantees is constant across a congruence class. Using the class
    /// here and in the lookup table means the cache and the table can
    /// never disagree about which nets are congruent.
    pub fn from_class(class: &patlabor_geom::NetClass) -> Self {
        CacheKey::new(class.canonical_key(), class.canonical_gaps())
    }
}

/// Configuration for the frontier cache (see [`FrontierCache`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Master switch. Disabled, the router always evaluates every
    /// candidate topology; results are identical either way.
    pub enabled: bool,
    /// Total entry budget, split evenly across shards. Each entry is a
    /// short id list, so the default (64 Ki entries) costs a few MiB.
    pub capacity: usize,
    /// Number of independent shards. More shards means less write
    /// contention while the cache warms; must be non-zero (clamped).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: true,
            capacity: 64 * 1024,
            shards: 16,
        }
    }
}

impl CacheConfig {
    /// A configuration with the cache switched off.
    pub fn disabled() -> Self {
        CacheConfig {
            enabled: false,
            ..CacheConfig::default()
        }
    }
}

/// Hit/miss counters and current occupancy, from
/// [`crate::PatLabor::cache_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a full query.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, Arc<[u32]>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<CacheKey>,
}

/// A bounded, sharded map from canonical net classes to winning topology
/// ids. See the module docs for the correctness argument.
#[derive(Debug)]
pub struct FrontierCache {
    shards: Box<[RwLock<Shard>]>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FrontierCache {
    /// Creates an empty cache; `config.enabled` is the caller's concern.
    pub fn new(config: &CacheConfig) -> Self {
        let shards = config.shards.max(1);
        FrontierCache {
            shards: (0..shards).map(|_| RwLock::default()).collect(),
            per_shard_cap: (config.capacity / shards).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &RwLock<Shard> {
        // The pattern key's low bits are a permutation code and already
        // well mixed; fold in a gap hash so same-pattern nets spread too.
        let mut h = key.pattern ^ (key.gaps.len() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for &g in key.gaps.iter() {
            h = (h ^ g as u64).wrapping_mul(0x100_0000_01b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Looks up a winning-id list, bumping the hit/miss counters.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<[u32]>> {
        let shard = self.shard(key).read().expect("cache lock poisoned");
        match shard.map.get(key) {
            Some(ids) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(ids))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a winning-id list, evicting the oldest entry of the target
    /// shard when it is full.
    ///
    /// A concurrent duplicate insert (two threads missing on the same key
    /// at once) overwrites with an equal value and is harmless.
    pub fn insert(&self, key: CacheKey, ids: Arc<[u32]>) {
        let mut shard = self.shard(&key).write().expect("cache lock poisoned");
        if shard.map.insert(key.clone(), ids).is_none() {
            if shard.map.len() > self.per_shard_cap {
                if let Some(oldest) = shard.order.pop_front() {
                    shard.map.remove(&oldest);
                }
            }
            shard.order.push_back(key);
        }
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().expect("cache lock poisoned").map.len())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: u64, gaps: &[i64]) -> CacheKey {
        CacheKey::new(p, gaps)
    }

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let cache = FrontierCache::new(&CacheConfig::default());
        let k = key(42, &[1, 2, 3]);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), vec![7, 9].into());
        assert_eq!(cache.get(&k).as_deref(), Some(&[7u32, 9][..]));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_pattern_different_gaps_are_distinct() {
        let cache = FrontierCache::new(&CacheConfig::default());
        cache.insert(key(1, &[5, 5]), vec![0].into());
        assert!(cache.get(&key(1, &[5, 6])).is_none());
        assert!(cache.get(&key(1, &[5, 5])).is_some());
    }

    #[test]
    fn fifo_eviction_bounds_each_shard() {
        let config = CacheConfig {
            capacity: 4,
            shards: 1,
            ..CacheConfig::default()
        };
        let cache = FrontierCache::new(&config);
        for i in 0..20u64 {
            cache.insert(key(i, &[i as i64]), vec![i as u32].into());
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 4, "shard stays at capacity");
        // Newest entry survives, oldest is gone.
        assert!(cache.get(&key(19, &[19])).is_some());
        assert!(cache.get(&key(0, &[0])).is_none());
    }

    #[test]
    fn duplicate_insert_does_not_grow_order_queue() {
        let config = CacheConfig {
            capacity: 2,
            shards: 1,
            ..CacheConfig::default()
        };
        let cache = FrontierCache::new(&config);
        let k = key(3, &[1]);
        for _ in 0..10 {
            cache.insert(k.clone(), vec![1].into());
        }
        cache.insert(key(4, &[2]), vec![2].into());
        cache.insert(key(5, &[3]), vec![3].into());
        // k was inserted first and must be the first evicted despite the
        // repeated overwrites.
        assert_eq!(cache.stats().entries, 2);
        assert!(cache.get(&k).is_none());
    }

    #[test]
    fn zero_shard_config_is_clamped() {
        let config = CacheConfig {
            shards: 0,
            capacity: 0,
            ..CacheConfig::default()
        };
        let cache = FrontierCache::new(&config);
        cache.insert(key(1, &[1]), vec![1].into());
        assert!(cache.get(&key(1, &[1])).is_some());
    }
}
