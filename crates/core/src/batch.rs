//! Multithreaded batch routing.
//!
//! VLSI designs contain millions of nets and every net routes
//! independently, so the paper evaluates all methods with multithreading
//! (its footnote 4 chides YSD for comparing GPU batches against serial
//! SALT). This module provides the high-throughput driver: a lock-free
//! chunked work distributor over a shared [`PatLabor`] instance (the
//! lookup tables are immutable after construction, so one router serves
//! every thread).
//!
//! # Design
//!
//! The only shared mutable state is one atomic chunk cursor. Workers claim
//! contiguous index ranges with `fetch_add` and write each result directly
//! into its final slot of the (uninitialized) output vector — slots are
//! disjoint by construction, so no locks, no per-slot `Mutex`, and no
//! post-hoc reordering are needed. Chunk size adapts to the workload
//! (`nets.len() / (threads × 8)`, clamped to `[1, 256]`) so small batches
//! still balance across threads while large batches amortize cursor
//! traffic.

use std::any::Any;
use std::mem::MaybeUninit;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use patlabor_geom::Net;

use crate::pipeline::{RouteError, RouteResult};
use crate::resilience::ResilienceReport;
use crate::PatLabor;

/// Shares a raw pointer to the output slots between workers.
///
/// Safety contract: every index is written by exactly one worker (the
/// chunk cursor hands out disjoint ranges), and the owning vector outlives
/// the thread scope.
struct OutputSlots<T>(*mut MaybeUninit<T>);

// SAFETY: workers write disjoint slots; the pointer itself is only copied.
unsafe impl<T: Send> Sync for OutputSlots<T> {}

/// Drops the already-initialized output slots if a worker panic unwinds
/// the batch mid-fill.
///
/// `Vec<MaybeUninit<T>>` never drops its contents, so without this guard
/// every `T` written before the panic would leak (routing results hold
/// heap-allocated frontiers, so the leak is real memory, not just a
/// formality). Workers flag each slot *after* writing it; the guard runs
/// on the spawning thread after `thread::scope` has joined every worker
/// (the join provides the happens-before edge for the flagged writes) and
/// drops exactly the flagged slots. The success path defuses the guard
/// with `mem::forget` before assuming ownership of the values.
struct SlotDropGuard<'a, T> {
    slots: *mut MaybeUninit<T>,
    init: &'a [AtomicBool],
}

impl<T> Drop for SlotDropGuard<'_, T> {
    fn drop(&mut self) {
        for (i, flag) in self.init.iter().enumerate() {
            if flag.load(Ordering::Acquire) {
                // SAFETY: the flag is set only after slot `i` was fully
                // written, and no other code drops it (the success path
                // forgets this guard before taking ownership).
                unsafe { (*self.slots.add(i)).assume_init_drop() };
            }
        }
    }
}

/// Fills a `len`-slot output vector by claiming chunked index ranges from
/// an atomic cursor across `workers` scoped threads; `fill(i)` produces
/// slot `i`. Results are in index order, identical to a serial loop.
///
/// Panic safety: if a `fill` call panics, the scope joins the remaining
/// workers and re-panics, and the [`SlotDropGuard`] drops every slot that
/// was initialized before the unwind — nothing leaks.
fn fill_slots_parallel<T, F>(len: usize, workers: usize, chunk: usize, fill: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut results: Vec<MaybeUninit<T>> = Vec::with_capacity(len);
    let slots = OutputSlots(results.as_mut_ptr());
    let init: Box<[AtomicBool]> = (0..len).map(|_| AtomicBool::new(false)).collect();
    // Armed before any worker runs; declared after `results` so an unwind
    // drops the initialized contents first, then the vector frees the
    // (by then inert) buffer.
    let guard = SlotDropGuard {
        slots: results.as_mut_ptr(),
        init: &init,
    };
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let slots = &slots;
            let cursor = &cursor;
            let init = &init;
            let fill = &fill;
            scope.spawn(move || loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                let end = (start + chunk).min(len);
                for i in start..end {
                    let value = fill(i);
                    // SAFETY: `i` is inside this worker's claimed range;
                    // ranges are disjoint and within the vector's
                    // allocated capacity.
                    unsafe { (*slots.0.add(i)).write(value) };
                    // Publish only after the write completes, so the
                    // guard never drops a half-written slot.
                    init[i].store(true, Ordering::Release);
                }
            });
        }
    });
    // Every worker joined without panicking and the cursor covered
    // 0..len, so all slots are initialized; ownership passes to the
    // returned vector and the guard must not double-drop.
    std::mem::forget(guard);
    // SAFETY: all `len` slots were written exactly once (see above).
    unsafe { results.set_len(len) };
    // MaybeUninit<T> → T is a transparent no-op once initialized.
    results
        .into_iter()
        .map(|slot| unsafe { slot.assume_init() })
        .collect()
}

/// Renders a caught panic payload for [`RouteError::Panicked`] (panics
/// raise `&str` or `String` in practice; anything else gets a marker).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl PatLabor {
    /// [`PatLabor::route`] with batch-level panic isolation: a panic that
    /// escapes the degradation ladder (a fault no rung could absorb) is
    /// converted into [`RouteError::Panicked`] for this net's slot
    /// instead of unwinding — and thereby poisoning — the whole batch.
    fn route_caught(&self, net: &Net) -> RouteResult {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.route(net))) {
            Ok(result) => result,
            Err(payload) => Err(RouteError::Panicked {
                payload: panic_message(payload.as_ref()),
            }),
        }
    }

    /// Routes every net, spreading work over `threads` OS threads.
    ///
    /// `threads` is clamped to at least 1 (a zero request degrades to
    /// serial routing instead of panicking). Results are in input order
    /// and bit-identical to calling [`PatLabor::route`] per net (routing
    /// is deterministic, with or without the frontier cache).
    ///
    /// Each slot is that net's own [`RouteResult`]: a net the tables
    /// cannot serve yields `Err` in its slot without poisoning the rest
    /// of the batch, and a panic that escapes the routing ladder is
    /// caught per net ([`RouteError::Panicked`]) — one pathological net
    /// never takes the batch down.
    pub fn route_batch(&self, nets: &[Net], threads: usize) -> Vec<RouteResult> {
        let threads = threads.max(1);
        if threads == 1 || nets.len() <= 1 {
            return nets.iter().map(|n| self.route_caught(n)).collect();
        }
        let workers = threads.min(nets.len());
        // Adaptive chunking: ~8 chunks per worker bounds the tail-latency
        // imbalance at ~1/8 of one worker's share, while chunks ≥ 1 and
        // ≤ 256 keep cursor traffic negligible on huge batches.
        let chunk = (nets.len() / (workers * 8)).clamp(1, 256);
        fill_slots_parallel(nets.len(), workers, chunk, |i| self.route_caught(&nets[i]))
    }

    /// [`PatLabor::route_batch`] plus the batch-level
    /// [`ResilienceReport`] aggregating every slot's ladder activity
    /// (what served, what degraded, what panicked, what hit deadlines).
    pub fn route_batch_with_report(
        &self,
        nets: &[Net],
        threads: usize,
    ) -> (Vec<RouteResult>, ResilienceReport) {
        let results = self.route_batch(nets, threads);
        let mut report = ResilienceReport::from_results(&results);
        report.cache_bypassed = self.cache_stats().is_some_and(|s| s.bypassed);
        (results, report)
    }

    /// [`PatLabor::route_batch`] with a caller-proven non-zero thread
    /// count.
    pub fn route_batch_threads(&self, nets: &[Net], threads: NonZeroUsize) -> Vec<RouteResult> {
        self.route_batch(nets, threads.get())
    }

    /// Routes every net over all available hardware threads
    /// (mirroring [`patlabor_lut::LutBuilder`]'s default parallelism).
    pub fn route_batch_auto(&self, nets: &[Net]) -> Vec<RouteResult> {
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        self.route_batch(nets, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::RouteError;
    use crate::RouterConfig;
    use patlabor_pareto::ParetoSet;
    use patlabor_tree::RoutingTree;

    /// The frontiers of a batch result, panicking on any per-net error.
    ///
    /// Comparisons use frontiers rather than whole outcomes: provenance
    /// legitimately differs between runs (a serial pass warms the shared
    /// cache, turning the batch pass's `ExactLut` answers into
    /// `CacheHit`s) while the frontiers stay bit-identical.
    fn frontiers(results: Vec<RouteResult>) -> Vec<ParetoSet<RoutingTree>> {
        results
            .into_iter()
            .map(|r| r.expect("batch net failed").frontier)
            .collect()
    }

    #[test]
    fn batch_matches_sequential_and_is_order_stable() {
        let router = PatLabor::with_config(RouterConfig {
            lambda: 4,
            ..RouterConfig::default()
        });
        let nets = patlabor_netgen::iccad_like_suite(0xba7c4, 24, 12);
        let sequential: Vec<_> = nets
            .iter()
            .map(|n| router.route(n).expect("serial net failed").frontier)
            .collect();
        for threads in [1, 2, 4, 7] {
            let batch = frontiers(router.route_batch(&nets, threads));
            assert_eq!(batch, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn zero_threads_clamps_to_serial() {
        let router = PatLabor::with_config(RouterConfig {
            lambda: 4,
            ..RouterConfig::default()
        });
        let nets = patlabor_netgen::iccad_like_suite(0x21, 5, 8);
        // Second route of the same nets hits the warm cache, so both
        // passes see identical provenance too — whole outcomes compare.
        let _warmup = router.route_batch(&nets, 1);
        let serial: Vec<_> = nets.iter().map(|n| router.route(n)).collect();
        assert_eq!(router.route_batch(&nets, 0), serial);
        assert!(router.route_batch(&[], 0).is_empty());
    }

    #[test]
    fn auto_and_nonzero_variants_agree() {
        let router = PatLabor::with_config(RouterConfig {
            lambda: 4,
            ..RouterConfig::default()
        });
        let nets = patlabor_netgen::iccad_like_suite(0x77, 10, 10);
        let serial: Vec<_> = nets
            .iter()
            .map(|n| router.route(n).expect("serial net failed").frontier)
            .collect();
        assert_eq!(frontiers(router.route_batch_auto(&nets)), serial);
        let nz = NonZeroUsize::new(3).expect("non-zero");
        assert_eq!(frontiers(router.route_batch_threads(&nets, nz)), serial);
    }

    #[test]
    fn more_threads_than_nets_is_fine() {
        let router = PatLabor::with_config(RouterConfig {
            lambda: 4,
            ..RouterConfig::default()
        });
        let nets = patlabor_netgen::iccad_like_suite(0x5e5e, 3, 6);
        let serial: Vec<_> = nets
            .iter()
            .map(|n| router.route(n).expect("serial net failed").frontier)
            .collect();
        assert_eq!(frontiers(router.route_batch(&nets, 64)), serial);
    }

    /// Regression for the mid-batch panic leak: every `RouteResult` slot
    /// initialized before a worker panic must still be dropped during the
    /// unwind. Before the [`SlotDropGuard`], `Vec<MaybeUninit<_>>` leaked
    /// all of them.
    #[test]
    fn panic_mid_batch_drops_initialized_slots() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::atomic::Ordering::SeqCst;

        struct CountsDrops<'a>(&'a AtomicUsize);
        impl Drop for CountsDrops<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, SeqCst);
            }
        }

        let created = AtomicUsize::new(0);
        let dropped = AtomicUsize::new(0);
        let len = 97usize;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fill_slots_parallel(len, 4, 3, |i| {
                if i == 41 {
                    panic!("injected worker failure");
                }
                created.fetch_add(1, SeqCst);
                CountsDrops(&dropped)
            })
        }));
        assert!(result.is_err(), "the injected panic must propagate");
        assert_eq!(
            created.load(SeqCst),
            dropped.load(SeqCst),
            "every initialized slot must be dropped during unwind"
        );
        // Sanity: the batch got far enough for the guard to matter.
        assert!(created.load(SeqCst) > 0);
    }

    /// The happy path through the guard: values transfer out exactly once
    /// (each slot dropped once by the caller, never by the guard).
    #[test]
    fn fill_slots_parallel_matches_serial_and_owns_results() {
        let squares = fill_slots_parallel(1000, 7, 16, |i| i * i);
        assert_eq!(squares.len(), 1000);
        assert!(squares.iter().enumerate().all(|(i, &v)| v == i * i));
    }

    /// Regression: a net the tables cannot serve must produce an `Err` in
    /// its own slot and leave every other slot intact — no batch
    /// poisoning, no worker panic. Routed strictly (no fallback rungs),
    /// since the default ladder would absorb the missing degree.
    #[test]
    fn degenerate_net_fails_its_slot_only() {
        let mut table = crate::LutBuilder::new(4).threads(1).build();
        // Simulate a truncated table: degree 3 is gone, degree 4 intact.
        table.remove_degree(3);
        let router = PatLabor::with_table_and_config(
            table,
            RouterConfig {
                resilience: crate::ResilienceConfig::strict(),
                ..RouterConfig::default()
            },
        );

        let mut nets = patlabor_netgen::iccad_like_suite(0xdead, 12, 4);
        nets.retain(|n| n.degree() == 4);
        assert!(nets.len() >= 4, "suite should contain degree-4 nets");
        let bad_index = nets.len() / 2;
        let bad = patlabor_geom::Net::new(vec![
            crate::Point::new(0, 0),
            crate::Point::new(5, 2),
            crate::Point::new(2, 7),
        ])
        .unwrap();
        nets.insert(bad_index, bad);

        for threads in [1, 4] {
            let results = router.route_batch(&nets, threads);
            assert_eq!(results.len(), nets.len());
            for (i, result) in results.iter().enumerate() {
                if i == bad_index {
                    assert_eq!(
                        *result,
                        Err(RouteError::MissingDegree { degree: 3, lambda: 4 }),
                        "threads = {threads}"
                    );
                } else {
                    let outcome = result.as_ref().expect("valid net poisoned by neighbor");
                    assert!(!outcome.frontier.is_empty());
                }
            }
        }
    }

    /// Satellite regression for panic isolation: an `AllRungs` stage
    /// panic (nothing in the ladder can absorb it) must surface as
    /// `Err(RouteError::Panicked)` in exactly the faulted nets' slots
    /// while every other slot matches a clean router bit-for-bit.
    #[test]
    fn stage_panic_isolates_to_its_slot() {
        use crate::resilience::{net_key, Fault, FaultKind, FaultPlane, FaultScope, Rung};

        let clean = PatLabor::with_config(RouterConfig {
            lambda: 4,
            ..RouterConfig::default()
        });
        let faults = FaultPlane::seeded(0x5eed).with_fault(Fault {
            kind: FaultKind::StagePanic,
            scope: FaultScope::AllRungs,
            probability: 0.3,
        });
        let faulty = clean.clone().with_faults(faults.clone());
        let nets = patlabor_netgen::iccad_like_suite(0xfa11, 40, 8);

        for threads in [1, 4] {
            let results = faulty.route_batch(&nets, threads);
            assert_eq!(results.len(), nets.len());
            let mut panicked = 0usize;
            for (net, result) in nets.iter().zip(&results) {
                // AllRungs decisions are rung-independent, so probing any
                // rung tells us whether this net was hit. Degree-2 nets
                // route closed-form, outside every fault site.
                let hit = net.degree() > 2
                    && faults.fires(FaultKind::StagePanic, Rung::Lut, net_key(net));
                if hit {
                    match result {
                        Err(RouteError::Panicked { payload }) => {
                            assert!(payload.contains("injected fault"), "{payload}");
                            panicked += 1;
                        }
                        other => panic!("expected a panicked slot, got {other:?}"),
                    }
                } else {
                    let outcome = result.as_ref().expect("unfaulted net poisoned by neighbor");
                    let expected = clean.route(net).expect("clean route");
                    assert_eq!(outcome.frontier.cost_vec(), expected.frontier.cost_vec());
                }
            }
            assert!(panicked >= 1, "the seeded plane should hit at least one net");
            assert!(panicked < nets.len(), "not every net should be hit at p = 0.3");

            // The aggregate report sees the same picture.
            let (reported, report) = faulty.route_batch_with_report(&nets, threads);
            assert_eq!(report, ResilienceReport::from_results(&reported));
            assert_eq!(report.nets as usize, nets.len());
            assert_eq!(report.served + report.errors, report.nets);
            assert_eq!(report.errors, report.panicked);
            assert_eq!(report.panicked as usize, panicked);
        }
    }
}
