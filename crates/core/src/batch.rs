//! Multithreaded batch routing.
//!
//! VLSI designs contain millions of nets and every net routes
//! independently, so the paper evaluates all methods with multithreading
//! (its footnote 4 chides YSD for comparing GPU batches against serial
//! SALT). This module provides the embarrassingly-parallel driver: a work
//! queue over a shared [`PatLabor`] instance (the lookup tables are
//! immutable after construction, so one router serves every thread).

use patlabor_geom::Net;
use patlabor_pareto::ParetoSet;
use patlabor_tree::RoutingTree;

use crate::PatLabor;

impl PatLabor {
    /// Routes every net, spreading work over `threads` OS threads.
    ///
    /// Results are in input order and identical to calling
    /// [`PatLabor::route`] per net (routing is deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn route_batch(&self, nets: &[Net], threads: usize) -> Vec<ParetoSet<RoutingTree>> {
        assert!(threads >= 1, "need at least one thread");
        if threads == 1 || nets.len() <= 1 {
            return nets.iter().map(|n| self.route(n)).collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results: Vec<std::sync::Mutex<Option<ParetoSet<RoutingTree>>>> =
            (0..nets.len()).map(|_| std::sync::Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(nets.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(net) = nets.get(i) else {
                        break;
                    };
                    let frontier = self.route(net);
                    *results[i].lock().expect("no panics while routing") = Some(frontier);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("no panics while routing")
                    .expect("every index was processed")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RouterConfig;

    #[test]
    fn batch_matches_sequential_and_is_order_stable() {
        let router = PatLabor::with_config(RouterConfig {
            lambda: 4,
            ..RouterConfig::default()
        });
        let nets = patlabor_netgen::iccad_like_suite(0xba7c4, 24, 12);
        let sequential: Vec<_> = nets.iter().map(|n| router.route(n).cost_vec()).collect();
        for threads in [1, 2, 4] {
            let batch = router.route_batch(&nets, threads);
            let got: Vec<_> = batch.iter().map(|f| f.cost_vec()).collect();
            assert_eq!(got, sequential, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let router = PatLabor::with_config(RouterConfig {
            lambda: 4,
            ..RouterConfig::default()
        });
        let _ = router.route_batch(&[], 0);
    }
}
