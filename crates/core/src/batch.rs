//! Multithreaded batch routing.
//!
//! VLSI designs contain millions of nets and every net routes
//! independently, so the paper evaluates all methods with multithreading
//! (its footnote 4 chides YSD for comparing GPU batches against serial
//! SALT). This module provides the high-throughput driver: a
//! work-stealing chunked distributor over a shared [`PatLabor`] instance
//! (the lookup tables are immutable after construction, so one router
//! serves every thread).
//!
//! # Design
//!
//! The net list is cut into fixed-size chunks and the chunk index space
//! is pre-partitioned into one contiguous interval per worker. Each
//! worker owns a lock-free deque holding its remaining interval, packed
//! `(next, end)` into a single cache-line-padded `AtomicU64`
//! ([`ChunkDeque`]): the owner pops chunks from the front with a CAS,
//! and a worker that runs dry steals the back half of the fullest-
//! looking victim's interval with a CAS on the same word. In the steady
//! state every worker touches only its own padded cursor — zero shared
//! write traffic — and the steal path only activates when the static
//! partition turns out imbalanced (expensive nets clustered in one
//! worker's span). Compare the previous design, where every chunk claim
//! bounced one global cursor line between all cores.
//!
//! Results are still published in input order and bit-identical to a
//! serial loop: workers write each result directly into its final slot
//! of the (uninitialized) output vector — slots are disjoint by
//! construction (chunks are claimed exactly once; see the ABA argument
//! on [`ChunkDeque`]), so no locks and no post-hoc reordering are
//! needed.
//!
//! Chunk size trades deque traffic against steal granularity; with
//! stealing, it no longer has to bound tail imbalance the way the old
//! `nets.len() / (threads × 8)` heuristic did. The default is derived
//! from measured steal rates (see [`BatchConfig::chunk_size`]) and can
//! be overridden per router.
//!
//! Every batch also returns per-worker telemetry ([`BatchStats`]): busy
//! nanoseconds, chunks and nets executed, successful and failed steals —
//! the raw material of the scaling bench (`BENCH_PR7.json`) and the
//! `route --threads` report.

use std::any::Any;
use std::mem::MaybeUninit;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use patlabor_geom::Net;

use crate::eco::DeltaJob;
use crate::engine::{Engine, Session};
use crate::pad::CachePadded;
use crate::pipeline::{RouteError, RouteResult};
use crate::resilience::ResilienceReport;
use crate::PatLabor;

/// Hard ceiling on the auto-derived chunk size.
///
/// Measured on the BENCH_PR7 workload: above ~64 nets per chunk the
/// steal granularity gets coarse enough that one late steal of a chunk
/// of expensive nets re-creates the tail imbalance stealing exists to
/// fix, while deque CAS traffic is already unmeasurable at 64 (one CAS
/// per chunk ≈ one per 64 routed nets). See `BatchConfig::chunk_size`.
const MAX_AUTO_CHUNK: usize = 64;

/// Batch-driver tuning, part of [`crate::RouterConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchConfig {
    /// Nets per work-stealing chunk; `None` derives it from the batch.
    ///
    /// The auto heuristic is `nets / (workers × 4)`, clamped to
    /// `[1, 64]`. Rationale, re-derived from measured steal rates on the
    /// BENCH_PR7 mixed-degree workload: with work stealing the chunk
    /// size no longer bounds tail imbalance (steals rebalance any
    /// leftover work), so the old ~8-chunks-per-worker rule only bought
    /// extra cursor traffic. Four chunks per worker keeps the initial
    /// partition coarse — on a balanced workload the steady state is
    /// *zero* steals and every worker walks its own span — while the 64-
    /// net cap keeps what a steal transfers fine-grained enough that
    /// measured steal counts stay in the single digits per worker on
    /// skewed workloads instead of one worker dragging a mega-chunk.
    pub chunk_size: Option<usize>,
}

impl BatchConfig {
    /// The chunk size for a batch of `len` nets over `workers` workers:
    /// the explicit override if set, the auto heuristic otherwise. Public
    /// so benches can report where the auto default lands in their sweeps.
    pub fn auto_chunk(&self, len: usize, workers: usize) -> usize {
        match self.chunk_size {
            Some(size) => size.max(1),
            None => (len / (workers.max(1) * 4)).clamp(1, MAX_AUTO_CHUNK),
        }
    }
}

/// One worker's telemetry for a batch run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStats {
    /// Nanoseconds spent executing chunks (routing nets), excluding
    /// deque traffic, steal scans and scheduler wait.
    pub busy_ns: u64,
    /// Chunks this worker executed (own and stolen).
    pub chunks: u64,
    /// Nets this worker routed.
    pub nets: u64,
    /// Successful steals: intervals taken from another worker's deque.
    pub steals: u64,
    /// Steal probes that found the victim's deque empty (or lost the
    /// race for its last chunks).
    pub failed_steals: u64,
}

/// Batch-level telemetry from [`PatLabor::route_batch_with_stats`]:
/// what actually happened on each worker, so scaling claims can be
/// checked against per-thread utilization instead of inferred from
/// wall-clock alone.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Workers actually spawned (`min(threads, nets)`; 1 = serial path).
    pub workers: usize,
    /// Chunk size used (see [`BatchConfig`]).
    pub chunk_size: usize,
    /// Total chunks the batch was cut into.
    pub chunks: usize,
    /// Wall-clock time of the whole batch.
    pub elapsed_ns: u64,
    /// Per-worker telemetry, indexed by worker id.
    pub per_worker: Vec<WorkerStats>,
}

impl BatchStats {
    /// Wall-clock elapsed as a `Duration`.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.elapsed_ns)
    }

    /// Successful steals across all workers.
    pub fn total_steals(&self) -> u64 {
        self.per_worker.iter().map(|w| w.steals).sum()
    }

    /// Failed steal probes across all workers.
    pub fn total_failed_steals(&self) -> u64 {
        self.per_worker.iter().map(|w| w.failed_steals).sum()
    }

    /// Mean worker utilization: busy time across workers divided by
    /// `workers × elapsed`. 1.0 means every worker routed nets for the
    /// whole wall-clock window; the gap to 1.0 is scheduler wait, steal
    /// scans and exit skew. Meaningless (and typically ≪ 1) when the
    /// process is oversubscribed — more workers than hardware threads.
    pub fn utilization(&self) -> f64 {
        if self.workers == 0 || self.elapsed_ns == 0 {
            return 0.0;
        }
        let busy: u64 = self.per_worker.iter().map(|w| w.busy_ns).sum();
        busy as f64 / (self.elapsed_ns as f64 * self.workers as f64)
    }

    /// The least-utilized worker's busy fraction (the straggler bound:
    /// how much of the window the worst worker actually worked).
    pub fn min_worker_utilization(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.per_worker
            .iter()
            .map(|w| w.busy_ns as f64 / self.elapsed_ns as f64)
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }
}

/// A worker's remaining chunk interval `[next, end)`, packed into one
/// cache-line-padded atomic word (`next` in the high 32 bits).
///
/// The owner pops from the front (`next += 1`), thieves take the back
/// half (`end → mid`), both via CAS on the same word, so every claim is
/// linearizable and each chunk index is handed out exactly once.
///
/// No ABA: intervals are only ever split, never merged, and a chunk
/// index is claimed (popped or handed to exactly one thief) at most
/// once. For a CAS to succeed on a stale read `(a, b)`, the word would
/// have to hold `(a, b)` again later — impossible, because leaving state
/// `(a, b)` either claims chunk `a` (pop) or shrinks `end` below `b`
/// with `a` still queued here, and a new interval is stored into this
/// deque only by its owner after the previous interval emptied, which
/// claims `a` first. A claimed index never re-enters any interval.
struct ChunkDeque(CachePadded<AtomicU64>);

/// `u32` is plenty: chunk counts are bounded by net counts, and a batch
/// of 4 billion nets would not fit in memory anyway (checked at entry).
fn pack(next: u32, end: u32) -> u64 {
    (u64::from(next) << 32) | u64::from(end)
}

fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

impl ChunkDeque {
    fn new(next: u32, end: u32) -> Self {
        ChunkDeque(CachePadded::new(AtomicU64::new(pack(next, end))))
    }

    /// Owner-side pop of the front chunk.
    fn pop_front(&self) -> Option<u32> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (next, end) = unpack(cur);
            if next >= end {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                pack(next + 1, end),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(next),
                Err(now) => cur = now,
            }
        }
    }

    /// Thief-side steal of the back half (all of a 1-chunk remainder);
    /// returns the stolen interval.
    fn steal_half(&self) -> Option<(u32, u32)> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (next, end) = unpack(cur);
            if next >= end {
                return None;
            }
            // The owner keeps the front floor(half); the thief takes the
            // back ceil(half) so a 1-chunk interval is stealable too.
            let mid = next + (end - next) / 2;
            match self.0.compare_exchange_weak(
                cur,
                pack(next, mid),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((mid, end)),
                Err(now) => cur = now,
            }
        }
    }

    /// How many chunks remain (steal-victim selection heuristic; racy
    /// by nature, which is fine — a stale read only picks a worse
    /// victim).
    fn remaining(&self) -> u32 {
        let (next, end) = unpack(self.0.load(Ordering::Relaxed));
        end.saturating_sub(next)
    }

    /// Owner-side replacement of an emptied interval with a stolen one.
    /// A plain store suffices: only the owner stores, and thieves never
    /// modify an empty deque (their CAS is preceded by the emptiness
    /// check), so no concurrent writer exists while this runs.
    fn refill(&self, interval: (u32, u32)) {
        self.0.store(pack(interval.0, interval.1), Ordering::Release);
    }
}

/// Shares a raw pointer to the output slots between workers.
///
/// Safety contract: every index is written by exactly one worker (chunk
/// claims are disjoint), and the owning vector outlives the thread
/// scope.
struct OutputSlots<T>(*mut MaybeUninit<T>);

// SAFETY: workers write disjoint slots; the pointer itself is only copied.
unsafe impl<T: Send> Sync for OutputSlots<T> {}

/// Drops the already-initialized output slots if a worker panic unwinds
/// the batch mid-fill.
///
/// `Vec<MaybeUninit<T>>` never drops its contents, so without this guard
/// every `T` written before the panic would leak (routing results hold
/// heap-allocated frontiers, so the leak is real memory, not just a
/// formality). Workers flag each slot *after* writing it; the guard runs
/// on the spawning thread after `thread::scope` has joined every worker
/// (the join provides the happens-before edge for the flagged writes) and
/// drops exactly the flagged slots. The success path defuses the guard
/// with `mem::forget` before assuming ownership of the values.
struct SlotDropGuard<'a, T> {
    slots: *mut MaybeUninit<T>,
    init: &'a [AtomicBool],
}

impl<T> Drop for SlotDropGuard<'_, T> {
    fn drop(&mut self) {
        for (i, flag) in self.init.iter().enumerate() {
            if flag.load(Ordering::Acquire) {
                // SAFETY: the flag is set only after slot `i` was fully
                // written, and no other code drops it (the success path
                // forgets this guard before taking ownership).
                unsafe { (*self.slots.add(i)).assume_init_drop() };
            }
        }
    }
}

/// Fills a `len`-slot output vector across `workers` scoped threads via
/// per-worker chunk deques with work stealing; `fill(i)` produces slot
/// `i`. Results are in index order, identical to a serial loop. Returns
/// the values and the per-worker telemetry.
///
/// Panic safety: if a `fill` call panics, the panicking worker unwinds,
/// the surviving workers keep draining every remaining chunk (steals
/// from the dead worker's deque included — its unprocessed interval is
/// still claimable), the scope joins and re-panics, and the
/// [`SlotDropGuard`] drops every slot that was initialized before the
/// unwind — nothing leaks.
fn fill_slots_parallel<T, F>(
    len: usize,
    workers: usize,
    chunk: usize,
    fill: F,
) -> (Vec<T>, Vec<WorkerStats>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(
        u32::try_from(len).is_ok(),
        "batch of {len} nets exceeds the u32 chunk index space"
    );
    let mut results: Vec<MaybeUninit<T>> = Vec::with_capacity(len);
    let slots = OutputSlots(results.as_mut_ptr());
    let init: Box<[AtomicBool]> = (0..len).map(|_| AtomicBool::new(false)).collect();
    // Armed before any worker runs; declared after `results` so an unwind
    // drops the initialized contents first, then the vector frees the
    // (by then inert) buffer.
    let guard = SlotDropGuard {
        slots: results.as_mut_ptr(),
        init: &init,
    };
    // Static partition: worker `w` starts with the contiguous chunk
    // interval [w·n/W, (w+1)·n/W) — balanced to within one chunk.
    let nchunks = len.div_ceil(chunk);
    let deques: Box<[ChunkDeque]> = (0..workers)
        .map(|w| {
            ChunkDeque::new(
                (w * nchunks / workers) as u32,
                ((w + 1) * nchunks / workers) as u32,
            )
        })
        .collect();
    let stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let slots = &slots;
                let init = &init;
                let fill = &fill;
                let deques = &deques;
                scope.spawn(move || {
                    let mut stats = WorkerStats::default();
                    loop {
                        // Drain the own deque front-to-back.
                        while let Some(c) = deques[w].pop_front() {
                            let start = (c as usize) * chunk;
                            let end = (start + chunk).min(len);
                            let t0 = Instant::now();
                            for i in start..end {
                                let value = fill(i);
                                // SAFETY: chunk `c` was claimed exactly
                                // once (deque CAS), so slot `i` has a
                                // unique writer, inside the vector's
                                // allocated capacity.
                                unsafe { (*slots.0.add(i)).write(value) };
                                // Publish only after the write completes,
                                // so the guard never drops a half-written
                                // slot.
                                init[i].store(true, Ordering::Release);
                            }
                            stats.busy_ns += t0.elapsed().as_nanos() as u64;
                            stats.chunks += 1;
                            stats.nets += (end - start) as u64;
                        }
                        // Own deque empty: steal the back half of the
                        // fullest victim. Exiting requires observing
                        // every other deque empty — losing a race for a
                        // victim's last chunks rescans, because another
                        // victim may still hold work. Once all deques
                        // read empty, the remaining work (if any) is
                        // already claimed by its holders, so exiting
                        // never orphans a chunk.
                        let mut stolen = None;
                        loop {
                            let victim = (0..workers)
                                .filter(|&v| v != w)
                                .max_by_key(|&v| deques[v].remaining());
                            match victim {
                                Some(v) if deques[v].remaining() > 0 => {
                                    if let Some(interval) = deques[v].steal_half() {
                                        stolen = Some(interval);
                                        break;
                                    }
                                    stats.failed_steals += 1;
                                }
                                _ => break,
                            }
                        }
                        match stolen {
                            Some(interval) => {
                                stats.steals += 1;
                                deques[w].refill(interval);
                            }
                            None => break,
                        }
                    }
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(stats) => stats,
                // Re-raise inside the scope: the scope has already joined
                // this worker; re-panicking here unwinds through the
                // scope (joining the rest) into the guard.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    // Every worker joined without panicking and the deques drained
    // 0..nchunks, so all slots are initialized; ownership passes to the
    // returned vector and the guard must not double-drop.
    std::mem::forget(guard);
    // SAFETY: all `len` slots were written exactly once (see above).
    unsafe { results.set_len(len) };
    // MaybeUninit<T> → T is a transparent no-op once initialized.
    let values = results
        .into_iter()
        .map(|slot| unsafe { slot.assume_init() })
        .collect();
    (values, stats)
}

/// Renders a caught panic payload for [`RouteError::Panicked`] (panics
/// raise `&str` or `String` in practice; anything else gets a marker).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Engine {
    /// [`Engine::route_session`] with batch-level panic isolation: a
    /// panic that escapes the degradation ladder (a fault no rung could
    /// absorb) is converted into [`RouteError::Panicked`] for this net's
    /// slot instead of unwinding — and thereby poisoning — the whole
    /// batch.
    fn route_caught(&self, net: &Net, session: &Session) -> RouteResult {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.route_session(net, session)
        })) {
            Ok(result) => result,
            Err(payload) => Err(RouteError::Panicked {
                payload: panic_message(payload.as_ref()),
            }),
        }
    }

    /// Routes every net, spreading work over `threads` OS threads.
    ///
    /// `threads` is clamped to at least 1 (a zero request degrades to
    /// serial routing instead of panicking). Results are in input order
    /// and bit-identical to calling [`Engine::route`] per net (routing
    /// is deterministic, with or without the frontier cache, at every
    /// thread count, steals included).
    ///
    /// Each slot is that net's own [`RouteResult`]: a net the tables
    /// cannot serve yields `Err` in its slot without poisoning the rest
    /// of the batch, and a panic that escapes the routing ladder is
    /// caught per net ([`RouteError::Panicked`]) — one pathological net
    /// never takes the batch down.
    pub fn route_batch(&self, nets: &[Net], threads: usize) -> Vec<RouteResult> {
        self.route_batch_with_stats(nets, threads).0
    }

    /// [`Engine::route_batch`] plus the driver telemetry: per-worker
    /// busy time, chunk/net tallies and steal counts ([`BatchStats`]).
    /// The scaling bench and `route --threads` read utilization from
    /// here instead of inferring it from wall clock.
    pub fn route_batch_with_stats(
        &self,
        nets: &[Net],
        threads: usize,
    ) -> (Vec<RouteResult>, BatchStats) {
        let default = Session::default();
        self.drive_batch(nets.len(), threads, |i| self.route_caught(&nets[i], &default))
    }

    /// Routes a coalesced window of requests, each under its own
    /// [`Session`], over the same work-stealing driver. Results are in
    /// input order, one slot per request, and each request's frontier is
    /// bit-identical to routing it alone via
    /// [`Engine::route_session`] — coalescing changes latency, never
    /// answers. The serve layer closes its accumulation windows into
    /// this call.
    pub fn route_batch_sessions(
        &self,
        requests: &[(Net, Session)],
        threads: usize,
    ) -> (Vec<RouteResult>, BatchStats) {
        self.drive_batch(requests.len(), threads, |i| {
            let (net, session) = &requests[i];
            self.route_caught(net, session)
        })
    }

    /// [`Engine::reroute_with_staleness`] with batch-level panic
    /// isolation, mirroring [`Engine::route_caught`].
    fn reroute_caught(&self, job: &DeltaJob) -> RouteResult {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.reroute_with_staleness(&job.delta, job.prior_edits, &job.session)
        })) {
            Ok(result) => result,
            Err(payload) => Err(RouteError::Panicked {
                payload: panic_message(payload.as_ref()),
            }),
        }
    }

    /// Reroutes a batch of edits over the same work-stealing driver as
    /// [`Engine::route_batch_sessions`]. Results are in input order, one
    /// slot per job; class-preserving edits replay from the frontier
    /// cache (provenance [`crate::RouteSource::Reused`]) and everything
    /// else falls through the ordinary ladder. The serve layer coalesces
    /// `reroute` wire requests into the same accumulation windows as
    /// fresh routes and closes mixed windows into this call.
    pub fn route_batch_deltas(
        &self,
        jobs: &[DeltaJob],
        threads: usize,
    ) -> (Vec<RouteResult>, BatchStats) {
        self.drive_batch(jobs.len(), threads, |i| self.reroute_caught(&jobs[i]))
    }

    /// The shared driver body: serial fast path or work-stealing fill
    /// over `len` independent slots.
    fn drive_batch(
        &self,
        len: usize,
        threads: usize,
        fill: impl Fn(usize) -> RouteResult + Sync,
    ) -> (Vec<RouteResult>, BatchStats) {
        let threads = threads.max(1);
        let t0 = Instant::now();
        if threads == 1 || len <= 1 {
            let busy = Instant::now();
            let results: Vec<RouteResult> = (0..len).map(&fill).collect();
            let busy_ns = busy.elapsed().as_nanos() as u64;
            let stats = BatchStats {
                workers: 1,
                chunk_size: len.max(1),
                chunks: 1,
                elapsed_ns: t0.elapsed().as_nanos() as u64,
                per_worker: vec![WorkerStats {
                    busy_ns,
                    chunks: 1,
                    nets: len as u64,
                    ..WorkerStats::default()
                }],
            };
            return (results, stats);
        }
        let workers = threads.min(len);
        let chunk = self.config().batch.auto_chunk(len, workers);
        let (results, per_worker) = fill_slots_parallel(len, workers, chunk, fill);
        let stats = BatchStats {
            workers,
            chunk_size: chunk,
            chunks: len.div_ceil(chunk),
            elapsed_ns: t0.elapsed().as_nanos() as u64,
            per_worker,
        };
        (results, stats)
    }

    /// [`Engine::route_batch`] plus the batch-level
    /// [`ResilienceReport`] aggregating every slot's ladder activity
    /// (what served, what degraded, what panicked, what hit deadlines)
    /// and the frontier cache's health (bypass state and lock
    /// contention).
    pub fn route_batch_with_report(
        &self,
        nets: &[Net],
        threads: usize,
    ) -> (Vec<RouteResult>, ResilienceReport) {
        let results = self.route_batch(nets, threads);
        let report = self.stamp_report_cache_health(ResilienceReport::from_results(&results));
        (results, report)
    }

    /// Folds the frontier cache's health counters into a report built
    /// from batch results (the serve layer calls this on its own
    /// accumulated report at shutdown).
    pub fn stamp_report_cache_health(&self, mut report: ResilienceReport) -> ResilienceReport {
        if let Some(stats) = self.cache_stats() {
            report.cache_bypassed = stats.bypassed;
            report.cache_contended_reads = stats.contended_reads;
            report.cache_contended_writes = stats.contended_writes;
        }
        report
    }
}

impl PatLabor {
    /// Routes every net, spreading work over `threads` OS threads.
    ///
    /// `threads` is clamped to at least 1 (a zero request degrades to
    /// serial routing instead of panicking). Results are in input order
    /// and bit-identical to calling [`PatLabor::route`] per net (routing
    /// is deterministic, with or without the frontier cache, at every
    /// thread count, steals included).
    ///
    /// Each slot is that net's own [`RouteResult`]: a net the tables
    /// cannot serve yields `Err` in its slot without poisoning the rest
    /// of the batch, and a panic that escapes the routing ladder is
    /// caught per net ([`RouteError::Panicked`]) — one pathological net
    /// never takes the batch down.
    pub fn route_batch(&self, nets: &[Net], threads: usize) -> Vec<RouteResult> {
        self.engine().route_batch(nets, threads)
    }

    /// [`PatLabor::route_batch`] plus the driver telemetry: per-worker
    /// busy time, chunk/net tallies and steal counts ([`BatchStats`]).
    /// The scaling bench and `route --threads` read utilization from
    /// here instead of inferring it from wall clock.
    pub fn route_batch_with_stats(
        &self,
        nets: &[Net],
        threads: usize,
    ) -> (Vec<RouteResult>, BatchStats) {
        self.engine().route_batch_with_stats(nets, threads)
    }

    /// [`PatLabor::route_batch`] plus the batch-level
    /// [`ResilienceReport`] aggregating every slot's ladder activity
    /// (what served, what degraded, what panicked, what hit deadlines)
    /// and the frontier cache's health (bypass state and lock
    /// contention).
    pub fn route_batch_with_report(
        &self,
        nets: &[Net],
        threads: usize,
    ) -> (Vec<RouteResult>, ResilienceReport) {
        self.engine().route_batch_with_report(nets, threads)
    }

    /// [`PatLabor::route_batch`] with a caller-proven non-zero thread
    /// count.
    pub fn route_batch_threads(&self, nets: &[Net], threads: NonZeroUsize) -> Vec<RouteResult> {
        self.route_batch(nets, threads.get())
    }

    /// Routes every net over all available hardware threads
    /// (mirroring [`patlabor_lut::LutBuilder`]'s default parallelism).
    pub fn route_batch_auto(&self, nets: &[Net]) -> Vec<RouteResult> {
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        self.route_batch(nets, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::RouteError;
    use crate::RouterConfig;
    use patlabor_pareto::ParetoSet;
    use patlabor_tree::RoutingTree;

    /// The frontiers of a batch result, panicking on any per-net error.
    ///
    /// Comparisons use frontiers rather than whole outcomes: provenance
    /// legitimately differs between runs (a serial pass warms the shared
    /// cache, turning the batch pass's `ExactLut` answers into
    /// `CacheHit`s) while the frontiers stay bit-identical.
    fn frontiers(results: Vec<RouteResult>) -> Vec<ParetoSet<RoutingTree>> {
        results
            .into_iter()
            .map(|r| r.expect("batch net failed").frontier)
            .collect()
    }

    #[test]
    fn deque_pop_and_steal_partition_the_interval() {
        let deque = ChunkDeque::new(0, 10);
        assert_eq!(deque.pop_front(), Some(0));
        assert_eq!(deque.remaining(), 9);
        // Thief takes the back ceil(half) of [1, 10).
        assert_eq!(deque.steal_half(), Some((5, 10)));
        assert_eq!(deque.remaining(), 4);
        for expect in 1..5 {
            assert_eq!(deque.pop_front(), Some(expect));
        }
        assert_eq!(deque.pop_front(), None);
        assert_eq!(deque.steal_half(), None);
        // A 1-chunk interval is stealable whole.
        let last = ChunkDeque::new(7, 8);
        assert_eq!(last.steal_half(), Some((7, 8)));
        assert_eq!(last.pop_front(), None);
    }

    /// Hammer one deque from many threads (owner pops, thieves steal):
    /// every chunk index must be claimed exactly once.
    #[test]
    fn deque_claims_are_disjoint_under_contention() {
        use std::sync::atomic::AtomicUsize;
        const CHUNKS: u32 = 10_000;
        let deque = ChunkDeque::new(0, CHUNKS);
        let claims: Box<[AtomicUsize]> =
            (0..CHUNKS).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|scope| {
            // One owner popping the front...
            scope.spawn(|| {
                while let Some(c) = deque.pop_front() {
                    claims[c as usize].fetch_add(1, Ordering::Relaxed);
                }
            });
            // ...and thieves carving up the back.
            for _ in 0..3 {
                scope.spawn(|| {
                    while let Some((lo, hi)) = deque.steal_half() {
                        for c in lo..hi {
                            claims[c as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        for (c, claim) in claims.iter().enumerate() {
            assert_eq!(claim.load(Ordering::Relaxed), 1, "chunk {c} claim count");
        }
    }

    #[test]
    fn batch_matches_sequential_and_is_order_stable() {
        let router = PatLabor::with_config(RouterConfig {
            lambda: 4,
            ..RouterConfig::default()
        });
        let nets = patlabor_netgen::iccad_like_suite(0xba7c4, 24, 12);
        let sequential: Vec<_> = nets
            .iter()
            .map(|n| router.route(n).expect("serial net failed").frontier)
            .collect();
        for threads in [1, 2, 4, 7] {
            let batch = frontiers(router.route_batch(&nets, threads));
            assert_eq!(batch, sequential, "threads = {threads}");
        }
    }

    /// Satellite: the determinism matrix. Bit-identical frontiers at
    /// thread counts {1, 2, 4, N, N+3} (N = hardware threads) under work
    /// stealing, with a chunk size small enough that steals actually
    /// happen when the counts exceed the initial partition's balance.
    #[test]
    fn determinism_matrix_across_thread_counts() {
        let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());
        let router = PatLabor::with_config(RouterConfig {
            lambda: 4,
            batch: BatchConfig { chunk_size: Some(2) },
            ..RouterConfig::default()
        });
        let nets = patlabor_netgen::iccad_like_suite(0xde7e2, 60, 10);
        let sequential: Vec<_> = nets
            .iter()
            .map(|n| router.route(n).expect("serial net failed").frontier)
            .collect();
        for threads in [1, 2, 4, hardware, hardware + 3] {
            let (results, stats) = router.route_batch_with_stats(&nets, threads);
            assert_eq!(frontiers(results), sequential, "threads = {threads}");
            assert_eq!(stats.workers, threads.min(nets.len()).max(1));
            let routed: u64 = stats.per_worker.iter().map(|w| w.nets).sum();
            assert_eq!(routed as usize, nets.len(), "threads = {threads}");
        }
    }

    #[test]
    fn explicit_chunk_size_is_honored() {
        let router = PatLabor::with_config(RouterConfig {
            lambda: 4,
            batch: BatchConfig { chunk_size: Some(3) },
            ..RouterConfig::default()
        });
        let nets = patlabor_netgen::iccad_like_suite(0xc4u64, 20, 8);
        let (results, stats) = router.route_batch_with_stats(&nets, 2);
        assert_eq!(stats.chunk_size, 3);
        assert_eq!(stats.chunks, nets.len().div_ceil(3));
        assert_eq!(results.len(), nets.len());
        // The auto heuristic: nets/(workers·4) clamped to [1, 64].
        assert_eq!(BatchConfig::default().auto_chunk(1000, 4), 62);
        assert_eq!(BatchConfig::default().auto_chunk(10, 8), 1);
        assert_eq!(BatchConfig::default().auto_chunk(1_000_000, 2), 64);
        assert_eq!(BatchConfig { chunk_size: Some(0) }.auto_chunk(10, 2), 1);
    }

    #[test]
    fn zero_threads_clamps_to_serial() {
        let router = PatLabor::with_config(RouterConfig {
            lambda: 4,
            ..RouterConfig::default()
        });
        let nets = patlabor_netgen::iccad_like_suite(0x21, 5, 8);
        // Second route of the same nets hits the warm cache, so both
        // passes see identical provenance too — whole outcomes compare.
        let _warmup = router.route_batch(&nets, 1);
        let serial: Vec<_> = nets.iter().map(|n| router.route(n)).collect();
        assert_eq!(router.route_batch(&nets, 0), serial);
        assert!(router.route_batch(&[], 0).is_empty());
    }

    #[test]
    fn auto_and_nonzero_variants_agree() {
        let router = PatLabor::with_config(RouterConfig {
            lambda: 4,
            ..RouterConfig::default()
        });
        let nets = patlabor_netgen::iccad_like_suite(0x77, 10, 10);
        let serial: Vec<_> = nets
            .iter()
            .map(|n| router.route(n).expect("serial net failed").frontier)
            .collect();
        assert_eq!(frontiers(router.route_batch_auto(&nets)), serial);
        let nz = NonZeroUsize::new(3).expect("non-zero");
        assert_eq!(frontiers(router.route_batch_threads(&nets, nz)), serial);
    }

    #[test]
    fn more_threads_than_nets_is_fine() {
        let router = PatLabor::with_config(RouterConfig {
            lambda: 4,
            ..RouterConfig::default()
        });
        let nets = patlabor_netgen::iccad_like_suite(0x5e5e, 3, 6);
        let serial: Vec<_> = nets
            .iter()
            .map(|n| router.route(n).expect("serial net failed").frontier)
            .collect();
        assert_eq!(frontiers(router.route_batch(&nets, 64)), serial);
    }

    /// Regression for the mid-batch panic leak: every `RouteResult` slot
    /// initialized before a worker panic must still be dropped during the
    /// unwind. Before the [`SlotDropGuard`], `Vec<MaybeUninit<_>>` leaked
    /// all of them.
    #[test]
    fn panic_mid_batch_drops_initialized_slots() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::atomic::Ordering::SeqCst;

        struct CountsDrops<'a>(&'a AtomicUsize);
        impl Drop for CountsDrops<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, SeqCst);
            }
        }

        let created = AtomicUsize::new(0);
        let dropped = AtomicUsize::new(0);
        let len = 97usize;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fill_slots_parallel(len, 4, 3, |i| {
                if i == 41 {
                    panic!("injected worker failure");
                }
                created.fetch_add(1, SeqCst);
                CountsDrops(&dropped)
            })
        }));
        assert!(result.is_err(), "the injected panic must propagate");
        assert_eq!(
            created.load(SeqCst),
            dropped.load(SeqCst),
            "every initialized slot must be dropped during unwind"
        );
        // Sanity: the batch got far enough for the guard to matter.
        assert!(created.load(SeqCst) > 0);
    }

    /// Satellite: a worker dying mid-steal. The panicking worker's
    /// still-queued interval stays claimable, the survivors steal and
    /// finish every other slot, and the unwind drops exactly the
    /// initialized ones — slot isolation holds through worker death.
    #[test]
    fn worker_death_mid_steal_leaves_other_slots_claimed() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::atomic::Ordering::SeqCst;

        let filled = AtomicUsize::new(0);
        let len = 400usize;
        // Chunk 1 with 4 workers: worker 0 owns [0, 100) and dies on its
        // very first net; the other three keep draining their own spans
        // and then steal the dead worker's remainder.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fill_slots_parallel(len, 4, 1, |i| {
                if i == 0 {
                    panic!("worker 0 dies immediately");
                }
                filled.fetch_add(1, SeqCst);
                i
            })
        }));
        assert!(result.is_err(), "the worker death must propagate");
        // Every slot except the poisoned one was produced: the dead
        // worker's interval was stolen and finished by the survivors.
        assert_eq!(filled.load(SeqCst), len - 1);
    }

    /// The happy path through the guard: values transfer out exactly once
    /// (each slot dropped once by the caller, never by the guard), and
    /// the per-worker tallies cover the batch.
    #[test]
    fn fill_slots_parallel_matches_serial_and_owns_results() {
        let (squares, stats) = fill_slots_parallel(1000, 7, 16, |i| i * i);
        assert_eq!(squares.len(), 1000);
        assert!(squares.iter().enumerate().all(|(i, &v)| v == i * i));
        assert_eq!(stats.len(), 7);
        assert_eq!(stats.iter().map(|w| w.nets).sum::<u64>(), 1000);
        assert_eq!(
            stats.iter().map(|w| w.chunks).sum::<u64>(),
            1000u64.div_ceil(16)
        );
    }

    /// A deliberately skewed workload (all cost in the last quarter of
    /// the batch) must trigger steals: the statically-partitioned owner
    /// of the expensive span cannot be left to finish alone.
    #[test]
    fn skewed_workloads_actually_steal() {
        let (_, stats) = fill_slots_parallel(256, 4, 1, |i| {
            if i >= 192 {
                // The expensive span: burn enough real time (≈ 1 ms per
                // net, past any OS timeslice) that the other three
                // workers drain their cheap spans first and go stealing
                // — even on a single hardware thread.
                std::hint::black_box((0..2_000_000u64).sum::<u64>());
            }
            i
        });
        let steals: u64 = stats.iter().map(|w| w.steals).sum();
        assert!(steals > 0, "no steals on a 4:1 skewed workload: {stats:?}");
        assert_eq!(stats.iter().map(|w| w.nets).sum::<u64>(), 256);
    }

    /// Regression: a net the tables cannot serve must produce an `Err` in
    /// its own slot and leave every other slot intact — no batch
    /// poisoning, no worker panic. Routed strictly (no fallback rungs),
    /// since the default ladder would absorb the missing degree.
    #[test]
    fn degenerate_net_fails_its_slot_only() {
        let mut table = crate::LutBuilder::new(4).threads(1).build();
        // Simulate a truncated table: degree 3 is gone, degree 4 intact.
        table.remove_degree(3);
        let router = PatLabor::with_table_and_config(
            table,
            RouterConfig {
                resilience: crate::ResilienceConfig::strict(),
                ..RouterConfig::default()
            },
        );

        let mut nets = patlabor_netgen::iccad_like_suite(0xdead, 12, 4);
        nets.retain(|n| n.degree() == 4);
        assert!(nets.len() >= 4, "suite should contain degree-4 nets");
        let bad_index = nets.len() / 2;
        let bad = patlabor_geom::Net::new(vec![
            crate::Point::new(0, 0),
            crate::Point::new(5, 2),
            crate::Point::new(2, 7),
        ])
        .unwrap();
        nets.insert(bad_index, bad);

        for threads in [1, 4] {
            let results = router.route_batch(&nets, threads);
            assert_eq!(results.len(), nets.len());
            for (i, result) in results.iter().enumerate() {
                if i == bad_index {
                    assert_eq!(
                        *result,
                        Err(RouteError::MissingDegree { degree: 3, lambda: 4 }),
                        "threads = {threads}"
                    );
                } else {
                    let outcome = result.as_ref().expect("valid net poisoned by neighbor");
                    assert!(!outcome.frontier.is_empty());
                }
            }
        }
    }

    /// Satellite regression for panic isolation: an `AllRungs` stage
    /// panic (nothing in the ladder can absorb it) must surface as
    /// `Err(RouteError::Panicked)` in exactly the faulted nets' slots
    /// while every other slot matches a clean router bit-for-bit.
    #[test]
    fn stage_panic_isolates_to_its_slot() {
        use crate::resilience::{net_key, Fault, FaultKind, FaultPlane, FaultScope, Rung};

        let clean = PatLabor::with_config(RouterConfig {
            lambda: 4,
            ..RouterConfig::default()
        });
        let faults = FaultPlane::seeded(0x5eed).with_fault(Fault {
            kind: FaultKind::StagePanic,
            scope: FaultScope::AllRungs,
            probability: 0.3,
        });
        let faulty = clean.clone().with_faults(faults.clone());
        let nets = patlabor_netgen::iccad_like_suite(0xfa11, 40, 8);

        for threads in [1, 4] {
            let results = faulty.route_batch(&nets, threads);
            assert_eq!(results.len(), nets.len());
            let mut panicked = 0usize;
            for (net, result) in nets.iter().zip(&results) {
                // AllRungs decisions are rung-independent, so probing any
                // rung tells us whether this net was hit. Degree-2 nets
                // route closed-form, outside every fault site.
                let hit = net.degree() > 2
                    && faults.fires(FaultKind::StagePanic, Rung::Lut, net_key(net));
                if hit {
                    match result {
                        Err(RouteError::Panicked { payload }) => {
                            assert!(payload.contains("injected fault"), "{payload}");
                            panicked += 1;
                        }
                        other => panic!("expected a panicked slot, got {other:?}"),
                    }
                } else {
                    let outcome = result.as_ref().expect("unfaulted net poisoned by neighbor");
                    let expected = clean.route(net).expect("clean route");
                    assert_eq!(outcome.frontier.cost_vec(), expected.frontier.cost_vec());
                }
            }
            assert!(panicked >= 1, "the seeded plane should hit at least one net");
            assert!(panicked < nets.len(), "not every net should be hit at p = 0.3");

            // The aggregate report sees the same picture.
            let (reported, report) = faulty.route_batch_with_report(&nets, threads);
            assert_eq!(
                ResilienceReport {
                    cache_bypassed: report.cache_bypassed,
                    cache_contended_reads: report.cache_contended_reads,
                    cache_contended_writes: report.cache_contended_writes,
                    ..ResilienceReport::from_results(&reported)
                },
                report
            );
            assert_eq!(report.nets as usize, nets.len());
            assert_eq!(report.served + report.errors, report.nets);
            assert_eq!(report.errors, report.panicked);
            assert_eq!(report.panicked as usize, panicked);
        }
    }
}
