//! Pareto-KS: the divide-and-conquer approximation (paper §IV-B).
//!
//! The Kalpakis–Sherman partitioning heuristic lifted to Pareto sets:
//! split the pin set at the median (alternating axes), solve each side
//! recursively — exactly (lookup table) once small enough — and return the
//! pairwise *combination* of the two sides' Pareto sets, pruned. With
//! lookup tables at the leaves this is an `O(√(n/λ))`-approximation
//! (Remark 1); PatLabor's local search supersedes it in practice, but it
//! is implemented both as the theoretical baseline and because the local
//! search restricted to touch-each-pin-once *is* a Pareto-KS variant.

use patlabor_geom::{Net, Point};
use patlabor_lut::LookupTable;
use patlabor_pareto::{Cost, ParetoSet};
use patlabor_tree::{extract_from_union, RoutingTree};

/// A sub-solution: edge set over the subproblem's points plus its local
/// source.
type SubSolution = (Vec<(Point, Point)>, Point);

/// Runs Pareto-KS over a net, using `table` for the base cases.
///
/// Returns the combined Pareto set of whole-net trees.
pub fn pareto_ks(net: &Net, table: &LookupTable) -> ParetoSet<RoutingTree> {
    let pts: Vec<Point> = net.pins().to_vec();
    let subs = solve_rec(&pts, net.source(), table, true);
    let mut out: Vec<(Cost, RoutingTree)> = Vec::new();
    for (edges, _src) in subs.into_payloads() {
        if let Ok(tree) = extract_from_union(net, &edges) {
            let (w, d) = tree.objectives();
            out.push((Cost::new(w, d), tree));
        }
    }
    ParetoSet::from_unpruned(out)
}

/// Recursively solves the subproblem over `pts`; the returned Pareto set
/// is keyed by the sub-solution objectives measured from the local source.
fn solve_rec(
    pts: &[Point],
    r: Point,
    table: &LookupTable,
    split_on_x: bool,
) -> ParetoSet<SubSolution> {
    let local_source = *pts
        .iter()
        .min_by_key(|p| (p.l1(r), p.x, p.y))
        .expect("subproblem is non-empty");
    if pts.len() == 1 {
        let mut set = ParetoSet::new();
        set.insert(Cost::new(0, 0), (Vec::new(), local_source));
        return set;
    }
    if pts.len() <= table.lambda() as usize {
        // Base case: exact Pareto set from the lookup table, rooted at the
        // pin closest to the (global) source.
        let mut pins = vec![local_source];
        let mut skipped_source = false;
        for &p in pts {
            if p == local_source && !skipped_source {
                skipped_source = true;
                continue;
            }
            pins.push(p);
        }
        let subnet = Net::new(pins).expect("at least two pins");
        let frontier = table
            .query(&subnet)
            .expect("base case degree is within lambda");
        return frontier
            .into_entries()
            .into_iter()
            .map(|(c, t)| (c, (t.edge_points().collect(), local_source)))
            .collect();
    }

    // Median split (paper step 2): at least ⌊|P|/2⌋ − 1 pins per side.
    let mut sorted = pts.to_vec();
    if split_on_x {
        sorted.sort_by_key(|p| (p.x, p.y));
    } else {
        sorted.sort_by_key(|p| (p.y, p.x));
    }
    let mid = sorted.len() / 2;
    let (p1, p2) = sorted.split_at(mid);
    let s1 = solve_rec(p1, r, table, !split_on_x);
    let s2 = solve_rec(p2, r, table, !split_on_x);

    // Combination (paper step 4): pairwise union + a connecting edge,
    // re-evaluated from the combined local source and pruned.
    let mut combined: Vec<(Cost, SubSolution)> = Vec::new();
    for (_, (e1, src1)) in s1.iter() {
        for (_, (e2, src2)) in s2.iter() {
            let mut edges = e1.clone();
            edges.extend_from_slice(e2);
            if src1 != src2 {
                edges.push((*src1, *src2));
            }
            let combined_src = if src1.l1(r) <= src2.l1(r) { *src1 } else { *src2 };
            match evaluate(pts, combined_src, &edges) {
                Some(cost) => combined.push((cost, (edges, combined_src))),
                None => continue,
            }
        }
    }
    ParetoSet::from_unpruned(combined)
}

/// Objectives of an edge set spanning `pts`, measured from `src`.
fn evaluate(pts: &[Point], src: Point, edges: &[(Point, Point)]) -> Option<Cost> {
    let mut pins = vec![src];
    let mut skipped = false;
    for &p in pts {
        if p == src && !skipped {
            skipped = true;
            continue;
        }
        pins.push(p);
    }
    let net = Net::new(pins).ok()?;
    let tree = extract_from_union(&net, edges).ok()?;
    let (w, d) = tree.objectives();
    Some(Cost::new(w, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use patlabor_lut::LutBuilder;

    fn random_net(seed: &mut u64, degree: usize, span: u64) -> Net {
        let mut rng = move || {
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            *seed
        };
        Net::new(
            (0..degree)
                .map(|_| Point::new((rng() % span) as i64, (rng() % span) as i64))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn base_case_is_exact() {
        let table = LutBuilder::new(5).threads(2).build();
        let mut seed = 3u64;
        let net = random_net(&mut seed, 5, 40);
        let ks = pareto_ks(&net, &table);
        let exact = table.query(&net).unwrap();
        assert_eq!(ks.cost_vec(), exact.cost_vec());
    }

    #[test]
    fn trees_are_valid_and_costs_exact() {
        let table = LutBuilder::new(4).threads(2).build();
        let mut seed = 9u64;
        for _ in 0..4 {
            let net = random_net(&mut seed, 13, 100);
            let ks = pareto_ks(&net, &table);
            assert!(!ks.is_empty());
            for (c, t) in ks.iter() {
                t.validate(&net).unwrap();
                assert_eq!((c.wirelength, c.delay), t.objectives());
            }
        }
    }

    #[test]
    fn approximation_is_reasonable_vs_exact_small() {
        // Degree 7 still fits the exact DW: Pareto-KS (forced to split by a
        // λ=4 table) must stay within a small constant of the frontier.
        let table = LutBuilder::new(4).threads(2).build();
        let mut seed = 31u64;
        for _ in 0..4 {
            let net = random_net(&mut seed, 7, 60);
            let exact =
                patlabor_dw::numeric::pareto_frontier(&net, &patlabor_dw::DwConfig::default());
            let ks = pareto_ks(&net, &table);
            let factor = patlabor_pareto::metrics::approximation_factor(&ks, &exact);
            assert!(
                factor < 2.0,
                "Pareto-KS approximation factor {factor} too large on {:?}",
                net.pins()
            );
        }
    }
}
