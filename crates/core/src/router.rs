//! The top-level router: the staged serving pipeline
//! `Classify → CacheLookup → LutQuery → LocalSearch → Materialize`
//! (see [`crate::pipeline`] for the stage diagram).

use std::sync::Arc;

use patlabor_geom::{Net, NetClass};
use patlabor_lut::{LookupTable, LutBuilder};
use patlabor_pareto::{Cost, ParetoSet};
use patlabor_tree::RoutingTree;

use crate::cache::{CacheConfig, CacheKey, CacheStats, FrontierCache};
use crate::local_search::{local_search_with_report, LocalSearchConfig};
use crate::pipeline::{
    RouteError, RouteOutcome, RouteProvenance, RouteSource, StageCounters,
};
use crate::policy::Policy;

/// Router-level configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// λ used when the router builds its own lookup tables (degrees
    /// `2..=λ` answered exactly). Tables for λ ≤ 6 build in seconds;
    /// λ = 7+ should be generated offline and loaded.
    pub lambda: u8,
    /// Local-search settings for nets with degree `> λ`.
    pub local_search: LocalSearchConfig,
    /// Frontier-cache settings ([`crate::cache`]). The cache memoizes
    /// winning topology ids per congruence class of nets, so repeated,
    /// translated and mirrored pin patterns skip the evaluation of
    /// dominated candidates. Routing results are bit-identical with the
    /// cache enabled or disabled; set `cache.enabled = false` (or use
    /// [`CacheConfig::disabled`]) to always evaluate from scratch.
    pub cache: CacheConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            lambda: 5,
            local_search: LocalSearchConfig::default(),
            cache: CacheConfig::default(),
        }
    }
}

/// The PatLabor router.
///
/// Construct once (table generation is the expensive part), then call
/// [`PatLabor::route`] per net — the intended usage pattern for routing
/// millions of nets.
///
/// # Example
///
/// ```
/// use patlabor::{Net, PatLabor, Point, RouteSource};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let router = PatLabor::new();
/// let net = Net::new(vec![Point::new(0, 0), Point::new(5, 9), Point::new(9, 4)])?;
/// let outcome = router.route(&net)?;
/// assert!(!outcome.frontier.is_empty());
/// assert_eq!(outcome.provenance.source, RouteSource::ExactLut);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PatLabor {
    table: LookupTable,
    policy: Policy,
    config: RouterConfig,
    /// Present iff `config.cache.enabled`. Shared (not deep-copied) by
    /// clones, so batch workers cloning a router still pool their hits.
    cache: Option<Arc<FrontierCache>>,
}

impl Default for PatLabor {
    fn default() -> Self {
        Self::new()
    }
}

impl PatLabor {
    /// Builds a router with freshly generated λ = 5 lookup tables and the
    /// default trained policy.
    pub fn new() -> Self {
        Self::with_config(RouterConfig::default())
    }

    /// Builds a router with the given configuration (generating tables for
    /// its λ).
    pub fn with_config(config: RouterConfig) -> Self {
        let table = LutBuilder::new(config.lambda).build();
        PatLabor {
            table,
            policy: Policy::default(),
            cache: Self::build_cache(&config),
            config,
        }
    }

    /// Builds a router around pre-generated tables (e.g. loaded from disk
    /// via [`LookupTable::load`]).
    pub fn with_table(table: LookupTable) -> Self {
        let config = RouterConfig {
            lambda: table.lambda(),
            ..RouterConfig::default()
        };
        PatLabor {
            table,
            policy: Policy::default(),
            cache: Self::build_cache(&config),
            config,
        }
    }

    fn build_cache(config: &RouterConfig) -> Option<Arc<FrontierCache>> {
        config
            .cache
            .enabled
            .then(|| Arc::new(FrontierCache::new(&config.cache)))
    }

    /// Replaces the pin-selection policy (e.g. with a freshly trained one).
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the local-search configuration.
    pub fn with_local_search(mut self, local_search: LocalSearchConfig) -> Self {
        self.config.local_search = local_search;
        self
    }

    /// Replaces the frontier-cache configuration, dropping any cached
    /// entries (and the old counters) in the process.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.config.cache = cache;
        self.cache = Self::build_cache(&self.config);
        self
    }

    /// The lookup tables backing this router.
    pub fn table(&self) -> &LookupTable {
        &self.table
    }

    /// The active pin-selection policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Routes one net through the staged pipeline, returning the Pareto
    /// frontier together with its provenance.
    ///
    /// Exact (the full Pareto frontier, one witness tree per point) for
    /// degrees `≤ λ`; the local-search approximation above. The outcome's
    /// [`RouteProvenance`] records which stage answered and how much work
    /// each stage did; a net the tables cannot serve (truncated or corrupt
    /// table file) returns a [`RouteError`] instead of panicking.
    ///
    /// Routing is deterministic: the frontier is bit-identical regardless
    /// of the frontier cache's state (only the provenance differs between
    /// a cache hit and a full query).
    pub fn route(&self, net: &Net) -> Result<RouteOutcome, RouteError> {
        let degree = net.degree();
        let mut counters = StageCounters::default();

        // Stage: Classify — pick the serving path by degree.
        if degree > self.table.lambda() as usize {
            // Stage: LocalSearch (materializes its own candidates).
            let (frontier, report) = local_search_with_report(
                net,
                &self.table,
                &self.policy,
                &self.config.local_search,
            );
            counters.local_search_rounds = report.rounds as u32;
            counters.local_search_candidates = report.candidates as u32;
            return Ok(self.outcome(frontier, degree, RouteSource::LocalSearch, counters));
        }
        if degree == 2 {
            // Closed form: the direct tree is the entire frontier; no
            // class, no cache, no table involvement.
            let tree = RoutingTree::direct(net);
            let (w, d) = tree.objectives();
            let mut frontier = ParetoSet::new();
            frontier.insert(Cost::new(w, d), tree);
            counters.trees_materialized = 1;
            return Ok(self.outcome(frontier, degree, RouteSource::ClosedForm, counters));
        }
        let class = self
            .table
            .classify(net)
            .ok_or(RouteError::UnclassifiableDegree { degree })?;

        // Stage: CacheLookup — replay the class's winning ids on a hit.
        if let Some(cache) = &self.cache {
            counters.cache_probes = 1;
            let key = CacheKey::from_class(&class);
            if let Some(ids) = cache.get(&key) {
                counters.cache_hits = 1;
                counters.trees_materialized = ids.len() as u32;
                let frontier = self.table.query_ids(net, &class, &ids);
                return Ok(self.outcome(frontier, degree, RouteSource::CacheHit, counters));
            }
            let (frontier, winners) = self.lut_query(net, &class, &mut counters)?;
            cache.insert(key, winners.into());
            return Ok(self.outcome(frontier, degree, RouteSource::ExactLut, counters));
        }
        let (frontier, _) = self.lut_query(net, &class, &mut counters)?;
        Ok(self.outcome(frontier, degree, RouteSource::ExactLut, counters))
    }

    /// Stages LutQuery + Materialize: score the stored candidates, prune,
    /// and build witness trees for the survivors only. Composes the same
    /// stage calls as [`LookupTable::query_witnesses`], so the frontier
    /// (including tie-break order) is bit-identical to it.
    fn lut_query(
        &self,
        net: &Net,
        class: &NetClass,
        counters: &mut StageCounters,
    ) -> Result<(ParetoSet<RoutingTree>, Vec<u32>), RouteError> {
        let Some(ids) = self.table.candidate_ids(class) else {
            let degree = class.degree();
            return Err(if self.table.pattern_count(degree) == 0 {
                RouteError::MissingDegree {
                    degree,
                    lambda: self.table.lambda(),
                }
            } else {
                RouteError::MissingPattern {
                    degree,
                    key: class.canonical_key(),
                }
            });
        };
        counters.candidates_scored = ids.len() as u32;
        let survivors = self.table.score_candidates(class, ids);
        counters.trees_materialized = survivors.len() as u32;
        let mut winners = Vec::with_capacity(survivors.len());
        let entries: Vec<(Cost, RoutingTree)> = survivors
            .into_iter()
            .map(|(cost, id)| {
                let tree = self.table.materialize(net, class, id);
                winners.push(id);
                (cost, tree)
            })
            .collect();
        Ok((ParetoSet::from_unpruned(entries), winners))
    }

    fn outcome(
        &self,
        frontier: ParetoSet<RoutingTree>,
        degree: usize,
        source: RouteSource,
        counters: StageCounters,
    ) -> RouteOutcome {
        RouteOutcome {
            frontier,
            provenance: RouteProvenance {
                degree,
                source,
                counters,
            },
        }
    }

    /// [`PatLabor::route`], discarding provenance.
    ///
    /// Convenience for callers that only want the frontier (benchmarks,
    /// examples, comparisons against baselines).
    ///
    /// # Panics
    ///
    /// Panics on a [`RouteError`] — only possible with a truncated or
    /// corrupt loaded table; a router built by [`PatLabor::new`] /
    /// [`PatLabor::with_config`] never fails.
    pub fn route_frontier(&self, net: &Net) -> ParetoSet<RoutingTree> {
        match self.route(net) {
            Ok(outcome) => outcome.frontier,
            Err(e) => panic!("routing failed: {e}"),
        }
    }

    /// Frontier-cache counters, or `None` when the cache is disabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Whether `route` is exact for this degree.
    pub fn is_exact_for(&self, degree: usize) -> bool {
        degree <= self.table.lambda() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patlabor_dw::{numeric, DwConfig};
    use patlabor_geom::Point;

    fn random_net(seed: &mut u64, degree: usize, span: u64) -> Net {
        let mut rng = move || {
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            *seed
        };
        Net::new(
            (0..degree)
                .map(|_| Point::new((rng() % span) as i64, (rng() % span) as i64))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn small_nets_are_exact() {
        let router = PatLabor::new();
        let mut seed = 2u64;
        for degree in 3..=5 {
            let net = random_net(&mut seed, degree, 60);
            let outcome = router.route(&net).expect("tabulated degree");
            let exact = numeric::pareto_frontier(&net, &DwConfig::default());
            assert_eq!(outcome.frontier.cost_vec(), exact.cost_vec());
            assert!(router.is_exact_for(degree));
            assert!(outcome.provenance.source.is_exact());
            assert_eq!(outcome.provenance.degree, degree);
        }
    }

    #[test]
    fn large_nets_use_local_search() {
        let router = PatLabor::new();
        let mut seed = 4u64;
        let net = random_net(&mut seed, 15, 150);
        assert!(!router.is_exact_for(15));
        let outcome = router.route(&net).expect("local search cannot fail");
        assert_eq!(outcome.provenance.source, RouteSource::LocalSearch);
        assert!(outcome.provenance.counters.local_search_rounds >= 1);
        assert!(outcome.provenance.counters.local_search_candidates >= 1);
        assert!(!outcome.frontier.is_empty());
        for (c, t) in outcome.frontier.iter() {
            t.validate(&net).unwrap();
            assert_eq!((c.wirelength, c.delay), t.objectives());
        }
    }

    #[test]
    fn router_from_loaded_table() {
        let table = crate::LutBuilder::new(4).threads(2).build();
        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        let loaded = crate::LookupTable::read_from(buf.as_slice()).unwrap();
        let router = PatLabor::with_table(loaded);
        let net = Net::new(vec![
            Point::new(0, 0),
            Point::new(7, 3),
            Point::new(2, 9),
            Point::new(8, 8),
        ])
        .unwrap();
        let exact = numeric::pareto_frontier(&net, &DwConfig::default());
        assert_eq!(router.route_frontier(&net).cost_vec(), exact.cost_vec());
    }

    #[test]
    fn provenance_distinguishes_cache_hits_from_full_queries() {
        let router = PatLabor::new();
        let mut seed = 9u64;
        let net = random_net(&mut seed, 4, 50);
        let first = router.route(&net).unwrap();
        assert_eq!(first.provenance.source, RouteSource::ExactLut);
        assert_eq!(first.provenance.counters.cache_probes, 1);
        assert_eq!(first.provenance.counters.cache_hits, 0);
        assert!(first.provenance.counters.candidates_scored >= 1);
        let second = router.route(&net).unwrap();
        assert_eq!(second.provenance.source, RouteSource::CacheHit);
        assert_eq!(second.provenance.counters.cache_hits, 1);
        // A cache hit scores nothing and materializes winners only.
        assert_eq!(second.provenance.counters.candidates_scored, 0);
        assert_eq!(
            second.provenance.counters.trees_materialized as usize,
            second.frontier.len()
        );
        // The frontier itself is bit-identical either way.
        assert_eq!(first.frontier, second.frontier);
    }

    #[test]
    fn degree_2_is_closed_form() {
        let router = PatLabor::new();
        let net = Net::new(vec![Point::new(0, 0), Point::new(3, 4)]).unwrap();
        let outcome = router.route(&net).unwrap();
        assert_eq!(outcome.provenance.source, RouteSource::ClosedForm);
        assert_eq!(outcome.provenance.counters.trees_materialized, 1);
        assert_eq!(outcome.provenance.counters.cache_probes, 0);
        assert_eq!(outcome.frontier.len(), 1);
    }

    #[test]
    fn gutted_table_reports_missing_degree_not_panic() {
        let mut table = crate::LutBuilder::new(4).threads(1).build();
        table.remove_degree(3);
        let router = PatLabor::with_table(table);
        let net = Net::new(vec![Point::new(0, 0), Point::new(5, 2), Point::new(2, 7)]).unwrap();
        match router.route(&net) {
            Err(RouteError::MissingDegree { degree: 3, lambda: 4 }) => {}
            other => panic!("expected MissingDegree, got {other:?}"),
        }
        // Degree 4 still routes fine — the failure is per-degree.
        let ok = Net::new(vec![
            Point::new(0, 0),
            Point::new(5, 2),
            Point::new(2, 7),
            Point::new(8, 4),
        ])
        .unwrap();
        assert!(router.route(&ok).is_ok());
    }
}
