//! The top-level router: the staged serving pipeline
//! `Classify → CacheLookup → LutQuery → LocalSearch → Materialize`
//! (see [`crate::pipeline`] for the stage diagram), hardened by the
//! degradation ladder of [`crate::resilience`] (DESIGN.md §12).
//!
//! Every serving rung runs inside a shared harness ([`run_rung`]) that
//! applies the fault plane's injections, gates compute rungs on the
//! per-net deadline budget, and isolates panics so a failing rung falls
//! through to the next instead of taking the process down.

use std::any::Any;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use patlabor_baselines::fallback_frontier;
use patlabor_dw::{numeric, Cancelled, DwConfig};
use patlabor_geom::{Net, NetClass};
use patlabor_lut::{LookupTable, LutBuilder};
use patlabor_pareto::{Cost, ParetoSet};
use patlabor_tree::RoutingTree;

use crate::batch::BatchConfig;
use crate::cache::{CacheConfig, CacheKey, CacheStats, FrontierCache, ShardStats};
use crate::local_search::{local_search_cancellable, LocalSearchConfig};
use crate::pipeline::{
    RouteError, RouteOutcome, RouteProvenance, RouteSource, StageCounters,
};
use crate::policy::Policy;
use crate::resilience::{
    net_key, Budget, Clock, DegradationTrace, FaultKind, FaultPlane, ResilienceConfig, Rung,
    RungOutcome, SystemClock,
};

/// Cancellation checkpoints between clock reads. Checkpoints are counted
/// on every poll, but the deadline clock — the expensive part of a poll —
/// is consulted only on this stride, keeping the budgeted/unbudgeted gap
/// on the BENCH_PR5 workload under its 2% guard. Rung gates still read
/// the clock unconditionally, so deadline granularity stays bounded by a
/// rung even when an inner loop finishes in fewer polls than one stride.
const BUDGET_POLL_STRIDE: u32 = 64;

/// Router-level configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// λ used when the router builds its own lookup tables (degrees
    /// `2..=λ` answered exactly). Tables for λ ≤ 6 build in seconds;
    /// λ = 7+ should be generated offline and loaded.
    pub lambda: u8,
    /// Local-search settings for nets with degree `> λ`.
    pub local_search: LocalSearchConfig,
    /// Frontier-cache settings ([`crate::cache`]). The cache memoizes
    /// winning topology ids per congruence class of nets, so repeated,
    /// translated and mirrored pin patterns skip the evaluation of
    /// dominated candidates. Routing results are bit-identical with the
    /// cache enabled or disabled; set `cache.enabled = false` (or use
    /// [`CacheConfig::disabled`]) to always evaluate from scratch.
    pub cache: CacheConfig,
    /// Which fallback rungs of the degradation ladder are armed, whether
    /// served frontiers are validated against their witness trees, and
    /// the optional per-net deadline. [`ResilienceConfig::strict`]
    /// restores the pre-ladder fail-fast behavior (oracles and tests
    /// that assert on `RouteError`s route that way).
    pub resilience: ResilienceConfig,
    /// Deterministic fault injection ([`FaultPlane`]), replacing ad-hoc
    /// table doctoring in tests and drills. Empty by default: nothing
    /// fires and the serving path skips all fault bookkeeping.
    pub faults: FaultPlane,
    /// Batch-driver tuning ([`crate::batch::BatchConfig`]): the
    /// work-stealing chunk size, auto-derived by default.
    pub batch: BatchConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            lambda: 5,
            local_search: LocalSearchConfig::default(),
            cache: CacheConfig::default(),
            resilience: ResilienceConfig::default(),
            faults: FaultPlane::default(),
            batch: BatchConfig::default(),
        }
    }
}

/// The PatLabor router.
///
/// Construct once (table generation is the expensive part), then call
/// [`PatLabor::route`] per net — the intended usage pattern for routing
/// millions of nets.
///
/// # Example
///
/// ```
/// use patlabor::{Net, PatLabor, Point, RouteSource};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let router = PatLabor::new();
/// let net = Net::new(vec![Point::new(0, 0), Point::new(5, 9), Point::new(9, 4)])?;
/// let outcome = router.route(&net)?;
/// assert!(!outcome.frontier.is_empty());
/// assert_eq!(outcome.provenance.source, RouteSource::ExactLut);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PatLabor {
    table: LookupTable,
    policy: Policy,
    config: RouterConfig,
    /// Present iff `config.cache.enabled`. Shared (not deep-copied) by
    /// clones, so batch workers cloning a router still pool their hits.
    cache: Option<Arc<FrontierCache>>,
    /// The clock deadlines are read against. Production routers keep the
    /// default [`SystemClock`]; tests inject a
    /// [`crate::resilience::VirtualClock`].
    clock: Arc<dyn Clock>,
}

impl Default for PatLabor {
    fn default() -> Self {
        Self::new()
    }
}

impl PatLabor {
    /// Builds a router with freshly generated λ = 5 lookup tables and the
    /// default trained policy.
    pub fn new() -> Self {
        Self::with_config(RouterConfig::default())
    }

    /// Builds a router with the given configuration (generating tables for
    /// its λ).
    pub fn with_config(config: RouterConfig) -> Self {
        let table = LutBuilder::new(config.lambda).build();
        Self::assemble(table, config)
    }

    /// Builds a router around pre-generated tables (e.g. loaded from disk
    /// via [`LookupTable::load`]).
    pub fn with_table(table: LookupTable) -> Self {
        let config = RouterConfig {
            lambda: table.lambda(),
            ..RouterConfig::default()
        };
        Self::assemble(table, config)
    }

    /// Builds a router around pre-generated tables with an explicit
    /// configuration. `config.lambda` is overridden by the table's λ —
    /// the table, not the config, decides which degrees are tabulated.
    pub fn with_table_and_config(table: LookupTable, config: RouterConfig) -> Self {
        let config = RouterConfig {
            lambda: table.lambda(),
            ..config
        };
        Self::assemble(table, config)
    }

    fn assemble(table: LookupTable, config: RouterConfig) -> Self {
        PatLabor {
            table,
            policy: Policy::default(),
            cache: Self::build_cache(&config),
            config,
            clock: Arc::new(SystemClock::new()),
        }
    }

    fn build_cache(config: &RouterConfig) -> Option<Arc<FrontierCache>> {
        config
            .cache
            .enabled
            .then(|| Arc::new(FrontierCache::new(&config.cache)))
    }

    /// Replaces the pin-selection policy (e.g. with a freshly trained one).
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the local-search configuration.
    pub fn with_local_search(mut self, local_search: LocalSearchConfig) -> Self {
        self.config.local_search = local_search;
        self
    }

    /// Replaces the frontier-cache configuration, dropping any cached
    /// entries (and the old counters) in the process.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.config.cache = cache;
        self.cache = Self::build_cache(&self.config);
        self
    }

    /// Replaces the resilience configuration (armed fallback rungs,
    /// frontier validation, per-net deadline).
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.config.resilience = resilience;
        self
    }

    /// Replaces the fault plane (deterministic fault injection).
    pub fn with_faults(mut self, faults: FaultPlane) -> Self {
        self.config.faults = faults;
        self
    }

    /// Replaces the deadline clock (tests inject a
    /// [`crate::resilience::VirtualClock`] so deadline behavior is a pure
    /// function of the configuration).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// The lookup tables backing this router.
    pub fn table(&self) -> &LookupTable {
        &self.table
    }

    /// The active pin-selection policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// The router's configuration (the batch driver reads its chunk
    /// tuning from here).
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Routes one net through the staged pipeline, returning the Pareto
    /// frontier together with its provenance.
    ///
    /// Exact (the full Pareto frontier, one witness tree per point) for
    /// degrees `≤ λ`; the local-search approximation above. The outcome's
    /// [`RouteProvenance`] records which stage answered and how much work
    /// each stage did.
    ///
    /// A rung that cannot serve — missing table degree or pattern,
    /// corrupted cost row caught by validation, expired deadline, or a
    /// panic — falls through the degradation ladder
    ///
    /// ```text
    /// cache → LUT query → numeric DW → baseline      (degree ≤ λ)
    ///         local search → baseline                (degree > λ)
    /// ```
    ///
    /// and the descent is recorded in [`RouteProvenance::trace`]. Only
    /// when every armed rung fails does the call return a structured
    /// [`RouteError`]; with the default [`ResilienceConfig`] the baseline
    /// rung is always armed, so errors require a fault nothing can absorb
    /// (an `AllRungs` stage panic) or a disarmed ladder
    /// ([`ResilienceConfig::strict`]).
    ///
    /// Routing is deterministic: the frontier is bit-identical regardless
    /// of the frontier cache's state (only the provenance differs between
    /// a cache hit and a full query).
    pub fn route(&self, net: &Net) -> Result<RouteOutcome, RouteError> {
        let degree = net.degree();
        let mut counters = StageCounters::default();
        let mut trace = DegradationTrace::default();

        // Stage: Classify — pick the serving path by degree.
        if degree == 2 {
            // Closed form: the direct tree is the entire frontier; no
            // class, no cache, no table involvement, no fault surface.
            let tree = RoutingTree::direct(net);
            let (w, d) = tree.objectives();
            let mut frontier = ParetoSet::new();
            frontier.insert(Cost::new(w, d), tree);
            counters.trees_materialized = 1;
            trace.push(Rung::ClosedForm, RungOutcome::Served);
            return Ok(self.outcome(frontier, degree, RouteSource::ClosedForm, counters, trace));
        }

        let res = self.config.resilience;
        let budget = res
            .deadline
            .map(|deadline| Budget::new(Arc::clone(&self.clock), deadline));
        let ctx = LadderCtx {
            faults: &self.config.faults,
            clock: self.clock.as_ref(),
            budget: budget.as_ref(),
            key: net_key(net),
        };
        let mut panic_payload: Option<Box<dyn Any + Send>> = None;
        let mut table_error: Option<RouteError> = None;

        if degree <= self.table.lambda() as usize {
            let class = self
                .table
                .classify(net)
                .ok_or(RouteError::UnclassifiableDegree { degree })?;

            // Rung: Cache — replay the class's winning ids on a hit. A
            // cache the adaptive bypass has retired (hit rate below the
            // configured floor through the warmup window) is skipped
            // entirely: no probe, no insert, no rung attempt.
            if let Some(cache) = self.cache.as_ref().filter(|c| !c.bypassed()) {
                let outcome =
                    run_rung(&ctx, Rung::Cache, &mut counters, &mut panic_payload, |counters| {
                        counters.cache_probes = 1;
                        let key = CacheKey::from_class(&class);
                        let ids = cache.get(&key).ok_or(RungOutcome::Unavailable)?;
                        counters.cache_hits = 1;
                        counters.trees_materialized = ids.len() as u32;
                        let mut frontier = self.table.query_ids(net, &class, &ids);
                        if ctx.faults.fires(FaultKind::CorruptedRow, Rung::Cache, ctx.key) {
                            frontier = corrupt_first_cost(frontier);
                        }
                        if res.validate_frontiers && !frontier_consistent(&frontier) {
                            return Err(RungOutcome::CorruptRow);
                        }
                        Ok(frontier)
                    });
                match outcome {
                    Ok(frontier) => {
                        trace.push(Rung::Cache, RungOutcome::Served);
                        return Ok(self.outcome(
                            frontier,
                            degree,
                            RouteSource::CacheHit,
                            counters,
                            trace,
                        ));
                    }
                    // A plain miss is the normal path, not a degradation.
                    Err(RungOutcome::Unavailable) => {}
                    Err(o) => trace.push(Rung::Cache, o),
                }
            }

            // Rung: Lut — the primary rung for tabulated degrees.
            let outcome =
                run_rung(&ctx, Rung::Lut, &mut counters, &mut panic_payload, |counters| {
                    // In this branch degree ≤ λ ≤ u8::MAX, so the narrowing
                    // casts below are lossless.
                    if ctx.faults.fires(FaultKind::MissingDegree, Rung::Lut, ctx.key) {
                        table_error.get_or_insert(RouteError::MissingDegree {
                            degree: degree as u8,
                            lambda: self.table.lambda(),
                        });
                        return Err(RungOutcome::MissingDegree);
                    }
                    if ctx.faults.fires(FaultKind::MissingPattern, Rung::Lut, ctx.key) {
                        table_error.get_or_insert(RouteError::MissingPattern {
                            degree: degree as u8,
                            key: class.canonical_key(),
                        });
                        return Err(RungOutcome::MissingPattern);
                    }
                    let (mut frontier, winners) = match self.lut_query(net, &class, counters) {
                        Ok(r) => r,
                        Err(e) => {
                            let outcome = if matches!(e, RouteError::MissingDegree { .. }) {
                                RungOutcome::MissingDegree
                            } else {
                                RungOutcome::MissingPattern
                            };
                            table_error.get_or_insert(e);
                            return Err(outcome);
                        }
                    };
                    if ctx.faults.fires(FaultKind::CorruptedRow, Rung::Lut, ctx.key) {
                        frontier = corrupt_first_cost(frontier);
                    }
                    if res.validate_frontiers && !frontier_consistent(&frontier) {
                        return Err(RungOutcome::CorruptRow);
                    }
                    Ok((frontier, winners))
                });
            match outcome {
                Ok((frontier, winners)) => {
                    if let Some(cache) = self.cache.as_ref().filter(|c| !c.bypassed()) {
                        cache.insert(CacheKey::from_class(&class), winners.into());
                    }
                    trace.push(Rung::Lut, RungOutcome::Served);
                    return Ok(self.outcome(
                        frontier,
                        degree,
                        RouteSource::ExactLut,
                        counters,
                        trace,
                    ));
                }
                Err(o) => trace.push(Rung::Lut, o),
            }

            // Rung: NumericDw — re-enumerate from scratch what the table
            // could not serve. Exact but per-instance expensive, hence
            // capped at `numeric::MAX_DEGREE`.
            if res.dw_fallback && degree <= numeric::MAX_DEGREE {
                let outcome =
                    run_rung(&ctx, Rung::NumericDw, &mut counters, &mut panic_payload, |counters| {
                        let checks = Cell::new(0u32);
                        let result =
                            numeric::pareto_frontier_cancellable(net, &DwConfig::default(), &|| {
                                let n = checks.get() + 1;
                                checks.set(n);
                                // Reading the clock is what costs, not the
                                // checkpoint itself: stride the reads so a
                                // hot DP loop stays under the BENCH_PR5
                                // overhead budget.
                                n.is_multiple_of(BUDGET_POLL_STRIDE)
                                    && ctx.budget.is_some_and(Budget::exceeded)
                            });
                        counters.budget_checks += checks.get();
                        result.map_err(|Cancelled| RungOutcome::DeadlineExceeded)
                    });
                match outcome {
                    Ok(frontier) => {
                        trace.push(Rung::NumericDw, RungOutcome::Served);
                        return Ok(self.outcome(
                            frontier,
                            degree,
                            RouteSource::NumericDw,
                            counters,
                            trace,
                        ));
                    }
                    Err(o) => trace.push(Rung::NumericDw, o),
                }
            }
        } else {
            // Rung: LocalSearch — the primary rung above λ.
            let outcome =
                run_rung(&ctx, Rung::LocalSearch, &mut counters, &mut panic_payload, |counters| {
                    // A missing-degree fault here simulates reroute tables
                    // the search cannot use (its subnets query the same
                    // LUT), demoting the net to the baseline rung.
                    if ctx.faults.fires(FaultKind::MissingDegree, Rung::LocalSearch, ctx.key) {
                        return Err(RungOutcome::MissingDegree);
                    }
                    let checks = Cell::new(0u32);
                    let result = local_search_cancellable(
                        net,
                        &self.table,
                        &self.policy,
                        &self.config.local_search,
                        &|| {
                            let n = checks.get() + 1;
                            checks.set(n);
                            n.is_multiple_of(BUDGET_POLL_STRIDE)
                                && ctx.budget.is_some_and(Budget::exceeded)
                        },
                    );
                    counters.budget_checks += checks.get();
                    match result {
                        Ok((frontier, report)) => {
                            counters.local_search_rounds = report.rounds as u32;
                            counters.local_search_candidates = report.candidates as u32;
                            Ok(frontier)
                        }
                        Err(Cancelled) => Err(RungOutcome::DeadlineExceeded),
                    }
                });
            match outcome {
                Ok(frontier) => {
                    trace.push(Rung::LocalSearch, RungOutcome::Served);
                    return Ok(self.outcome(
                        frontier,
                        degree,
                        RouteSource::LocalSearch,
                        counters,
                        trace,
                    ));
                }
                Err(o) => trace.push(Rung::LocalSearch, o),
            }
        }

        // Rung: Baseline — deliberately cheap and never deadline-gated:
        // an expired budget still yields valid (approximate) trees
        // instead of nothing.
        if res.baseline_fallback {
            let outcome =
                run_rung(&ctx, Rung::Baseline, &mut counters, &mut panic_payload, |counters| {
                    let frontier = fallback_frontier(net);
                    counters.trees_materialized += frontier.len() as u32;
                    Ok(frontier)
                });
            match outcome {
                Ok(frontier) => {
                    trace.push(Rung::Baseline, RungOutcome::Served);
                    return Ok(self.outcome(
                        frontier,
                        degree,
                        RouteSource::Baseline,
                        counters,
                        trace,
                    ));
                }
                Err(o) => trace.push(Rung::Baseline, o),
            }
        }

        // Ladder exhausted. A caught panic is not ours to swallow when no
        // rung could absorb it (the batch driver isolates it per slot);
        // otherwise prefer the real table error over the generic
        // exhaustion report.
        if let Some(payload) = panic_payload {
            panic::resume_unwind(payload);
        }
        Err(table_error.unwrap_or(RouteError::RungsExhausted { degree, trace }))
    }

    /// Stages LutQuery + Materialize: score the stored candidates, prune,
    /// and build witness trees for the survivors only. Composes the same
    /// stage calls as [`LookupTable::query_witnesses`], so the frontier
    /// (including tie-break order) is bit-identical to it.
    fn lut_query(
        &self,
        net: &Net,
        class: &NetClass,
        counters: &mut StageCounters,
    ) -> Result<(ParetoSet<RoutingTree>, Vec<u32>), RouteError> {
        let Some(ids) = self.table.candidate_ids(class) else {
            let degree = class.degree();
            return Err(if self.table.pattern_count(degree) == 0 {
                RouteError::MissingDegree {
                    degree,
                    lambda: self.table.lambda(),
                }
            } else {
                RouteError::MissingPattern {
                    degree,
                    key: class.canonical_key(),
                }
            });
        };
        counters.candidates_scored = ids.len() as u32;
        let survivors = self.table.score_candidates(class, ids);
        counters.trees_materialized = survivors.len() as u32;
        let mut winners = Vec::with_capacity(survivors.len());
        let entries: Vec<(Cost, RoutingTree)> = survivors
            .into_iter()
            .map(|(cost, id)| {
                let tree = self.table.materialize(net, class, id);
                winners.push(id);
                (cost, tree)
            })
            .collect();
        Ok((ParetoSet::from_unpruned(entries), winners))
    }

    fn outcome(
        &self,
        frontier: ParetoSet<RoutingTree>,
        degree: usize,
        source: RouteSource,
        counters: StageCounters,
        trace: DegradationTrace,
    ) -> RouteOutcome {
        RouteOutcome {
            frontier,
            provenance: RouteProvenance {
                degree,
                source,
                counters,
                trace,
            },
        }
    }

    /// [`PatLabor::route`], discarding provenance.
    ///
    /// Convenience for callers that only want the frontier (benchmarks,
    /// examples, comparisons against baselines). The full degradation
    /// ladder applies, so a table fault demotes the net to a lower rung
    /// instead of failing.
    ///
    /// # Panics
    ///
    /// Only when even the baseline rung cannot serve: every fallback
    /// disarmed ([`ResilienceConfig::strict`]) on a net the tables cannot
    /// answer, or a fault nothing can absorb (an `AllRungs` stage panic).
    /// With the default [`ResilienceConfig`] the baseline rung is always
    /// armed and this method never panics.
    pub fn route_frontier(&self, net: &Net) -> ParetoSet<RoutingTree> {
        match self.route(net) {
            Ok(outcome) => outcome.frontier,
            Err(e) => panic!("routing failed with every armed rung exhausted: {e}"),
        }
    }

    /// Frontier-cache counters, or `None` when the cache is disabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Per-shard frontier-cache counters (hits, misses, occupancy, lock
    /// contention), or `None` when the cache is disabled. The scaling
    /// bench reads these to spot hot shards instead of averaging them
    /// away in the aggregate [`CacheStats`].
    pub fn cache_shard_stats(&self) -> Option<Vec<ShardStats>> {
        self.cache.as_ref().map(|c| c.shard_stats())
    }

    /// Whether `route` is exact for this degree.
    pub fn is_exact_for(&self, degree: usize) -> bool {
        degree <= self.table.lambda() as usize
    }
}

/// The per-route context [`run_rung`] reads: the fault plane, the clock
/// it advances on injected delays, the deadline budget, and the net's
/// fault-decision key.
struct LadderCtx<'a> {
    faults: &'a FaultPlane,
    clock: &'a dyn Clock,
    budget: Option<&'a Budget>,
    key: u64,
}

/// Runs one rung inside the ladder's shared harness:
///
/// 1. an injected stage delay advances the clock *before* the deadline
///    gate, so a stalled stage burns the budget it is about to be judged
///    against;
/// 2. compute rungs ([`Rung::deadline_gated`]) are skipped once the
///    budget is exceeded;
/// 3. the body runs under `catch_unwind` (with an injected stage panic
///    fired inside it), so a panicking rung falls through instead of
///    unwinding the caller. The first caught payload is kept so an
///    unabsorbed panic can resume after the ladder is exhausted.
fn run_rung<T>(
    ctx: &LadderCtx<'_>,
    rung: Rung,
    counters: &mut StageCounters,
    panic_payload: &mut Option<Box<dyn Any + Send>>,
    body: impl FnOnce(&mut StageCounters) -> Result<T, RungOutcome>,
) -> Result<T, RungOutcome> {
    if ctx.faults.fires(FaultKind::StageDelay, rung, ctx.key) {
        ctx.clock.advance(ctx.faults.delay());
    }
    if rung.deadline_gated() {
        if let Some(budget) = ctx.budget {
            counters.budget_checks += 1;
            if budget.exceeded() {
                return Err(RungOutcome::DeadlineExceeded);
            }
        }
    }
    let inject = ctx.faults.fires(FaultKind::StagePanic, rung, ctx.key);
    match panic::catch_unwind(AssertUnwindSafe(|| {
        if inject {
            panic!("injected fault: stage panic at rung {rung}");
        }
        body(counters)
    })) {
        Ok(result) => result,
        Err(payload) => {
            panic_payload.get_or_insert(payload);
            Err(RungOutcome::Panicked)
        }
    }
}

/// Every cost must equal its witness tree's recomputed objectives; a
/// corrupted cost row breaks exactly this invariant.
fn frontier_consistent(frontier: &ParetoSet<RoutingTree>) -> bool {
    frontier
        .iter()
        .all(|(c, t)| (c.wirelength, c.delay) == t.objectives())
}

/// The corrupted-row injection: shift the first cost off its witness.
/// Decrementing (not incrementing) keeps the perturbed point dominant,
/// so [`ParetoSet::from_unpruned`]'s re-pruning cannot silently discard
/// the corruption before validation sees it.
fn corrupt_first_cost(frontier: ParetoSet<RoutingTree>) -> ParetoSet<RoutingTree> {
    let mut entries: Vec<(Cost, RoutingTree)> =
        frontier.iter().map(|(c, t)| (c, t.clone())).collect();
    if let Some((cost, _)) = entries.first_mut() {
        cost.wirelength -= 1;
    }
    ParetoSet::from_unpruned(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::{Fault, FaultScope, VirtualClock};
    use patlabor_dw::{numeric, DwConfig};
    use patlabor_geom::Point;
    use std::time::Duration;

    fn random_net(seed: &mut u64, degree: usize, span: u64) -> Net {
        let mut rng = move || {
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            *seed
        };
        Net::new(
            (0..degree)
                .map(|_| Point::new((rng() % span) as i64, (rng() % span) as i64))
                .collect(),
        )
        .unwrap()
    }

    fn router4() -> PatLabor {
        PatLabor::with_table(crate::LutBuilder::new(4).threads(2).build())
    }

    #[test]
    fn small_nets_are_exact() {
        let router = PatLabor::new();
        let mut seed = 2u64;
        for degree in 3..=5 {
            let net = random_net(&mut seed, degree, 60);
            let outcome = router.route(&net).expect("tabulated degree");
            let exact = numeric::pareto_frontier(&net, &DwConfig::default());
            assert_eq!(outcome.frontier.cost_vec(), exact.cost_vec());
            assert!(router.is_exact_for(degree));
            assert!(outcome.provenance.source.is_exact());
            assert_eq!(outcome.provenance.degree, degree);
            assert!(!outcome.provenance.trace.degraded());
        }
    }

    #[test]
    fn large_nets_use_local_search() {
        let router = PatLabor::new();
        let mut seed = 4u64;
        let net = random_net(&mut seed, 15, 150);
        assert!(!router.is_exact_for(15));
        let outcome = router.route(&net).expect("local search cannot fail");
        assert_eq!(outcome.provenance.source, RouteSource::LocalSearch);
        assert!(outcome.provenance.counters.local_search_rounds >= 1);
        assert!(outcome.provenance.counters.local_search_candidates >= 1);
        assert_eq!(outcome.provenance.trace.served_by(), Some(Rung::LocalSearch));
        assert!(!outcome.frontier.is_empty());
        for (c, t) in outcome.frontier.iter() {
            t.validate(&net).unwrap();
            assert_eq!((c.wirelength, c.delay), t.objectives());
        }
    }

    #[test]
    fn router_from_loaded_table() {
        let table = crate::LutBuilder::new(4).threads(2).build();
        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        let loaded = crate::LookupTable::read_from(buf.as_slice()).unwrap();
        let router = PatLabor::with_table(loaded);
        let net = Net::new(vec![
            Point::new(0, 0),
            Point::new(7, 3),
            Point::new(2, 9),
            Point::new(8, 8),
        ])
        .unwrap();
        let exact = numeric::pareto_frontier(&net, &DwConfig::default());
        assert_eq!(router.route_frontier(&net).cost_vec(), exact.cost_vec());
    }

    #[test]
    fn provenance_distinguishes_cache_hits_from_full_queries() {
        let router = PatLabor::new();
        let mut seed = 9u64;
        let net = random_net(&mut seed, 4, 50);
        let first = router.route(&net).unwrap();
        assert_eq!(first.provenance.source, RouteSource::ExactLut);
        assert_eq!(first.provenance.counters.cache_probes, 1);
        assert_eq!(first.provenance.counters.cache_hits, 0);
        assert!(first.provenance.counters.candidates_scored >= 1);
        let second = router.route(&net).unwrap();
        assert_eq!(second.provenance.source, RouteSource::CacheHit);
        assert_eq!(second.provenance.counters.cache_hits, 1);
        // A cache hit scores nothing and materializes winners only.
        assert_eq!(second.provenance.counters.candidates_scored, 0);
        assert_eq!(
            second.provenance.counters.trees_materialized as usize,
            second.frontier.len()
        );
        // A cache miss is the normal path, not a degradation.
        assert!(!first.provenance.trace.degraded());
        assert_eq!(second.provenance.trace.served_by(), Some(Rung::Cache));
        // The frontier itself is bit-identical either way.
        assert_eq!(first.frontier, second.frontier);
    }

    #[test]
    fn adaptive_bypass_stops_probing_a_useless_cache() {
        use crate::cache::CacheConfig;
        // A 100% hit-rate floor no real workload can meet: the bypass
        // must fire as soon as the 8-probe warmup window closes.
        let router = PatLabor::new().with_cache(CacheConfig {
            bypass_warmup: 8,
            bypass_threshold_permille: 1000,
            ..CacheConfig::default()
        });
        let mut seed = 11u64;
        let nets: Vec<Net> = (0..20).map(|_| random_net(&mut seed, 4, 5000)).collect();
        let mut post_bypass = 0;
        for net in &nets {
            let was_bypassed = router.cache_stats().unwrap().bypassed;
            let outcome = router.route(net).unwrap();
            if was_bypassed {
                post_bypass += 1;
                assert_eq!(
                    outcome.provenance.counters.cache_probes, 0,
                    "a bypassed cache must not be probed"
                );
                assert_eq!(outcome.provenance.source, RouteSource::ExactLut);
            }
        }
        let stats = router.cache_stats().unwrap();
        assert!(stats.bypassed, "warmup elapsed below the floor");
        assert!(post_bypass > 0, "some nets must have routed past the bypass");
        assert_eq!(
            stats.hits + stats.misses,
            8,
            "probing must stop exactly at the warmup boundary"
        );
        // The batch report surfaces the retirement.
        let (_, report) = router.route_batch_with_report(&nets[..3], 1);
        assert!(report.cache_bypassed);
        assert!(report.to_string().contains("cache bypassed"));
    }

    #[test]
    fn degree_2_is_closed_form() {
        let router = PatLabor::new();
        let net = Net::new(vec![Point::new(0, 0), Point::new(3, 4)]).unwrap();
        let outcome = router.route(&net).unwrap();
        assert_eq!(outcome.provenance.source, RouteSource::ClosedForm);
        assert_eq!(outcome.provenance.counters.trees_materialized, 1);
        assert_eq!(outcome.provenance.counters.cache_probes, 0);
        assert_eq!(outcome.provenance.trace.served_by(), Some(Rung::ClosedForm));
        assert_eq!(outcome.frontier.len(), 1);
    }

    #[test]
    fn strict_gutted_table_reports_missing_degree_not_panic() {
        let mut table = crate::LutBuilder::new(4).threads(1).build();
        table.remove_degree(3);
        // Strict mode: no fallback rungs — the pre-ladder fail-fast
        // contract that oracles assert on.
        let router = PatLabor::with_table_and_config(
            table,
            RouterConfig {
                resilience: ResilienceConfig::strict(),
                ..RouterConfig::default()
            },
        );
        let net = Net::new(vec![Point::new(0, 0), Point::new(5, 2), Point::new(2, 7)]).unwrap();
        match router.route(&net) {
            Err(RouteError::MissingDegree { degree: 3, lambda: 4 }) => {}
            other => panic!("expected MissingDegree, got {other:?}"),
        }
        // Degree 4 still routes fine — the failure is per-degree.
        let ok = Net::new(vec![
            Point::new(0, 0),
            Point::new(5, 2),
            Point::new(2, 7),
            Point::new(8, 4),
        ])
        .unwrap();
        assert!(router.route(&ok).is_ok());
    }

    #[test]
    fn gutted_table_degrades_to_numeric_dw() {
        let mut table = crate::LutBuilder::new(4).threads(1).build();
        table.remove_degree(3);
        let router = PatLabor::with_table(table);
        let net = Net::new(vec![Point::new(0, 0), Point::new(5, 2), Point::new(2, 7)]).unwrap();
        let outcome = router.route(&net).expect("the DW rung absorbs the missing degree");
        assert_eq!(outcome.provenance.source, RouteSource::NumericDw);
        assert!(outcome.provenance.source.is_exact());
        let exact = numeric::pareto_frontier(&net, &DwConfig::default());
        assert_eq!(outcome.frontier.cost_vec(), exact.cost_vec());
        let trace = outcome.provenance.trace;
        assert!(trace.degraded());
        assert_eq!(trace.to_string(), "lut:missing-degree -> numeric-dw:served");
    }

    #[test]
    fn injected_corrupt_row_is_validated_away() {
        let faults = FaultPlane::seeded(11).with_fault(Fault {
            kind: FaultKind::CorruptedRow,
            scope: FaultScope::Primary,
            probability: 1.0,
        });
        let router = router4().with_faults(faults);
        let mut seed = 5u64;
        let net = random_net(&mut seed, 4, 60);
        let outcome = router.route(&net).unwrap();
        assert_eq!(outcome.provenance.source, RouteSource::NumericDw);
        assert!(outcome
            .provenance
            .trace
            .contains(Rung::Lut, RungOutcome::CorruptRow));
        // The served frontier is the uncorrupted exact answer.
        let exact = numeric::pareto_frontier(&net, &DwConfig::default());
        assert_eq!(outcome.frontier.cost_vec(), exact.cost_vec());
        assert!(frontier_consistent(&outcome.frontier));
    }

    #[test]
    fn injected_stage_panic_is_absorbed_by_the_ladder() {
        let faults = FaultPlane::seeded(2).with_fault(Fault {
            kind: FaultKind::StagePanic,
            scope: FaultScope::Primary,
            probability: 1.0,
        });
        let router = router4().with_faults(faults);
        let mut seed = 6u64;
        // Small net: the LUT rung panics, numeric DW absorbs it exactly.
        let small = random_net(&mut seed, 4, 50);
        let outcome = router.route(&small).unwrap();
        assert_eq!(outcome.provenance.source, RouteSource::NumericDw);
        assert!(outcome
            .provenance
            .trace
            .contains(Rung::Lut, RungOutcome::Panicked));
        // Large net: local search panics, the baseline serves.
        let large = random_net(&mut seed, 9, 90);
        let outcome = router.route(&large).unwrap();
        assert_eq!(outcome.provenance.source, RouteSource::Baseline);
        assert!(!outcome.provenance.source.is_exact());
        assert!(outcome
            .provenance
            .trace
            .contains(Rung::LocalSearch, RungOutcome::Panicked));
        for (c, t) in outcome.frontier.iter() {
            t.validate(&large).unwrap();
            assert_eq!((c.wirelength, c.delay), t.objectives());
        }
    }

    #[test]
    fn unabsorbed_panic_resumes_after_exhaustion() {
        let faults = FaultPlane::seeded(4).with_fault(Fault {
            kind: FaultKind::StagePanic,
            scope: FaultScope::AllRungs,
            probability: 1.0,
        });
        let router = router4().with_faults(faults);
        let mut seed = 7u64;
        let net = random_net(&mut seed, 4, 50);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| router.route(&net)));
        let payload = caught.expect_err("every rung panics; nothing can absorb it");
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.contains("injected fault: stage panic"), "{msg}");
    }

    #[test]
    fn stage_delay_with_deadline_walks_to_the_baseline() {
        let faults = FaultPlane::seeded(0)
            .with_fault(Fault {
                kind: FaultKind::StageDelay,
                scope: FaultScope::Primary,
                probability: 1.0,
            })
            .with_delay(Duration::from_millis(10));
        let config = RouterConfig {
            resilience: ResilienceConfig {
                deadline: Some(Duration::from_millis(5)),
                ..ResilienceConfig::default()
            },
            faults,
            ..RouterConfig::default()
        };
        let router = PatLabor::with_table_and_config(
            crate::LutBuilder::new(4).threads(2).build(),
            config,
        )
        .with_clock(Arc::new(VirtualClock::new()));
        let mut seed = 8u64;
        let net = random_net(&mut seed, 4, 60);
        let outcome = router.route(&net).unwrap();
        assert_eq!(outcome.provenance.source, RouteSource::Baseline);
        assert_eq!(
            outcome.provenance.trace.to_string(),
            "lut:deadline -> numeric-dw:deadline -> baseline:served"
        );
        assert!(outcome.provenance.counters.budget_checks >= 2);
        for (c, t) in outcome.frontier.iter() {
            t.validate(&net).unwrap();
            assert_eq!((c.wirelength, c.delay), t.objectives());
        }
    }

    #[test]
    fn a_generous_deadline_does_not_change_the_route() {
        let config = RouterConfig {
            resilience: ResilienceConfig {
                deadline: Some(Duration::from_secs(3600)),
                ..ResilienceConfig::default()
            },
            ..RouterConfig::default()
        };
        let plain = router4();
        let budgeted = PatLabor::with_table_and_config(
            crate::LutBuilder::new(4).threads(2).build(),
            config,
        );
        let mut seed = 12u64;
        for degree in [3, 4, 9] {
            let net = random_net(&mut seed, degree, 70);
            let a = plain.route(&net).unwrap();
            let b = budgeted.route(&net).unwrap();
            assert_eq!(a.frontier.cost_vec(), b.frontier.cost_vec());
            assert_eq!(a.provenance.source, b.provenance.source);
            assert!(!b.provenance.trace.degraded());
            assert!(b.provenance.counters.budget_checks >= 1);
        }
    }
}
