//! The top-level router: lookup tables below λ, local search above.

use std::sync::Arc;

use patlabor_geom::Net;
use patlabor_lut::{LookupTable, LutBuilder};
use patlabor_pareto::ParetoSet;
use patlabor_tree::RoutingTree;

use crate::cache::{CacheConfig, CacheKey, CacheStats, FrontierCache};
use crate::local_search::{local_search, LocalSearchConfig};
use crate::policy::Policy;

/// Router-level configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// λ used when the router builds its own lookup tables (degrees
    /// `2..=λ` answered exactly). Tables for λ ≤ 6 build in seconds;
    /// λ = 7+ should be generated offline and loaded.
    pub lambda: u8,
    /// Local-search settings for nets with degree `> λ`.
    pub local_search: LocalSearchConfig,
    /// Frontier-cache settings ([`crate::cache`]). The cache memoizes
    /// winning topology ids per congruence class of nets, so repeated,
    /// translated and mirrored pin patterns skip the evaluation of
    /// dominated candidates. Routing results are bit-identical with the
    /// cache enabled or disabled; set `cache.enabled = false` (or use
    /// [`CacheConfig::disabled`]) to always evaluate from scratch.
    pub cache: CacheConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            lambda: 5,
            local_search: LocalSearchConfig::default(),
            cache: CacheConfig::default(),
        }
    }
}

/// The PatLabor router.
///
/// Construct once (table generation is the expensive part), then call
/// [`PatLabor::route`] per net — the intended usage pattern for routing
/// millions of nets.
///
/// # Example
///
/// ```
/// use patlabor::{Net, PatLabor, Point};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let router = PatLabor::new();
/// let net = Net::new(vec![Point::new(0, 0), Point::new(5, 9), Point::new(9, 4)])?;
/// let frontier = router.route(&net);
/// assert!(!frontier.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PatLabor {
    table: LookupTable,
    policy: Policy,
    config: RouterConfig,
    /// Present iff `config.cache.enabled`. Shared (not deep-copied) by
    /// clones, so batch workers cloning a router still pool their hits.
    cache: Option<Arc<FrontierCache>>,
}

impl Default for PatLabor {
    fn default() -> Self {
        Self::new()
    }
}

impl PatLabor {
    /// Builds a router with freshly generated λ = 5 lookup tables and the
    /// default trained policy.
    pub fn new() -> Self {
        Self::with_config(RouterConfig::default())
    }

    /// Builds a router with the given configuration (generating tables for
    /// its λ).
    pub fn with_config(config: RouterConfig) -> Self {
        let table = LutBuilder::new(config.lambda).build();
        PatLabor {
            table,
            policy: Policy::default(),
            cache: Self::build_cache(&config),
            config,
        }
    }

    /// Builds a router around pre-generated tables (e.g. loaded from disk
    /// via [`LookupTable::load`]).
    pub fn with_table(table: LookupTable) -> Self {
        let config = RouterConfig {
            lambda: table.lambda(),
            ..RouterConfig::default()
        };
        PatLabor {
            table,
            policy: Policy::default(),
            cache: Self::build_cache(&config),
            config,
        }
    }

    fn build_cache(config: &RouterConfig) -> Option<Arc<FrontierCache>> {
        config
            .cache
            .enabled
            .then(|| Arc::new(FrontierCache::new(&config.cache)))
    }

    /// Replaces the pin-selection policy (e.g. with a freshly trained one).
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the local-search configuration.
    pub fn with_local_search(mut self, local_search: LocalSearchConfig) -> Self {
        self.config.local_search = local_search;
        self
    }

    /// Replaces the frontier-cache configuration, dropping any cached
    /// entries (and the old counters) in the process.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.config.cache = cache;
        self.cache = Self::build_cache(&self.config);
        self
    }

    /// The lookup tables backing this router.
    pub fn table(&self) -> &LookupTable {
        &self.table
    }

    /// The active pin-selection policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Computes a Pareto set of routing trees for `net`.
    ///
    /// Exact (the full Pareto frontier, one witness tree per point) for
    /// degrees `≤ λ`; the local-search approximation above.
    pub fn route(&self, net: &Net) -> ParetoSet<RoutingTree> {
        if net.degree() <= self.table.lambda() as usize {
            self.route_exact(net)
        } else {
            local_search(net, &self.table, &self.policy, &self.config.local_search)
        }
    }

    /// The tabulated path (`degree ≤ λ`), with the frontier cache in
    /// front when enabled.
    fn route_exact(&self, net: &Net) -> ParetoSet<RoutingTree> {
        if let Some(cache) = &self.cache {
            // Degree-2 nets bypass the cache: their answer is closed-form
            // and `query_context` declines them.
            if let Some(ctx) = self.table.query_context(net) {
                let key = CacheKey::new(ctx.canonical_key(), ctx.canonical_gaps());
                if let Some(ids) = cache.get(&key) {
                    return self.table.query_ids(net, &ctx, &ids);
                }
                let (frontier, winners) = self
                    .table
                    .query_witnesses(net, &ctx)
                    .expect("degree <= lambda is always tabulated");
                cache.insert(key, winners.into());
                return frontier;
            }
        }
        self.table
            .query(net)
            .expect("degree <= lambda is always tabulated")
    }

    /// Frontier-cache counters, or `None` when the cache is disabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Whether `route` is exact for this degree.
    pub fn is_exact_for(&self, degree: usize) -> bool {
        degree <= self.table.lambda() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patlabor_dw::{numeric, DwConfig};
    use patlabor_geom::Point;

    fn random_net(seed: &mut u64, degree: usize, span: u64) -> Net {
        let mut rng = move || {
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            *seed
        };
        Net::new(
            (0..degree)
                .map(|_| Point::new((rng() % span) as i64, (rng() % span) as i64))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn small_nets_are_exact() {
        let router = PatLabor::new();
        let mut seed = 2u64;
        for degree in 3..=5 {
            let net = random_net(&mut seed, degree, 60);
            let got = router.route(&net);
            let exact = numeric::pareto_frontier(&net, &DwConfig::default());
            assert_eq!(got.cost_vec(), exact.cost_vec());
            assert!(router.is_exact_for(degree));
        }
    }

    #[test]
    fn large_nets_use_local_search() {
        let router = PatLabor::new();
        let mut seed = 4u64;
        let net = random_net(&mut seed, 15, 150);
        assert!(!router.is_exact_for(15));
        let frontier = router.route(&net);
        assert!(!frontier.is_empty());
        for (c, t) in frontier.iter() {
            t.validate(&net).unwrap();
            assert_eq!((c.wirelength, c.delay), t.objectives());
        }
    }

    #[test]
    fn router_from_loaded_table() {
        let table = crate::LutBuilder::new(4).threads(2).build();
        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        let loaded = crate::LookupTable::read_from(buf.as_slice()).unwrap();
        let router = PatLabor::with_table(loaded);
        let net = Net::new(vec![
            Point::new(0, 0),
            Point::new(7, 3),
            Point::new(2, 9),
            Point::new(8, 8),
        ])
        .unwrap();
        let exact = numeric::pareto_frontier(&net, &DwConfig::default());
        assert_eq!(router.route(&net).cost_vec(), exact.cost_vec());
    }
}
