//! The top-level router: [`RouterConfig`] plus the classic [`PatLabor`]
//! handle, now a thin wrapper over the long-lived [`Engine`]
//! (see [`crate::engine`] for the engine/session split).
//!
//! The staged serving pipeline
//! `Classify → CacheLookup → LutQuery → LocalSearch → Materialize`
//! (see [`crate::pipeline`] for the stage diagram) and the degradation
//! ladder of [`crate::resilience`] (DESIGN.md §12) live on the engine;
//! `PatLabor` keeps the original construct-once/route-per-net API for
//! library users and tests while the serve layer drives the engine
//! directly with per-request [`Session`]s.

use std::sync::Arc;

use patlabor_geom::Net;
use patlabor_lut::LookupTable;
use patlabor_pareto::ParetoSet;
use patlabor_tree::RoutingTree;

use crate::batch::BatchConfig;
use crate::cache::{CacheConfig, CacheStats, ShardStats};
use crate::eco::EcoConfig;
use crate::engine::{Engine, Session};
use crate::local_search::LocalSearchConfig;
use crate::pipeline::{RouteError, RouteOutcome};
use crate::policy::Policy;
use crate::resilience::{Clock, FaultPlane, ResilienceConfig};

/// Router-level configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// λ used when the router builds its own lookup tables (degrees
    /// `2..=λ` answered exactly). Tables for λ ≤ 6 build in seconds;
    /// λ = 7+ should be generated offline and loaded.
    pub lambda: u8,
    /// Local-search settings for nets with degree `> λ`.
    pub local_search: LocalSearchConfig,
    /// Frontier-cache settings ([`crate::cache`]). The cache memoizes
    /// winning topology ids per congruence class of nets, so repeated,
    /// translated and mirrored pin patterns skip the evaluation of
    /// dominated candidates. Routing results are bit-identical with the
    /// cache enabled or disabled; set `cache.enabled = false` (or use
    /// [`CacheConfig::disabled`]) to always evaluate from scratch.
    pub cache: CacheConfig,
    /// Which fallback rungs of the degradation ladder are armed, whether
    /// served frontiers are validated against their witness trees, and
    /// the optional per-net deadline. [`ResilienceConfig::strict`]
    /// restores the pre-ladder fail-fast behavior (oracles and tests
    /// that assert on `RouteError`s route that way).
    pub resilience: ResilienceConfig,
    /// Deterministic fault injection ([`FaultPlane`]), replacing ad-hoc
    /// table doctoring in tests and drills. Empty by default: nothing
    /// fires and the serving path skips all fault bookkeeping.
    pub faults: FaultPlane,
    /// Batch-driver tuning ([`crate::batch::BatchConfig`]): the
    /// work-stealing chunk size, auto-derived by default.
    pub batch: BatchConfig,
    /// Incremental-rerouting policy ([`crate::eco::EcoConfig`]): how
    /// many consecutive edits [`Engine::reroute`] may serve from replay
    /// before forcing a fresh route.
    pub eco: EcoConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            lambda: 5,
            local_search: LocalSearchConfig::default(),
            cache: CacheConfig::default(),
            resilience: ResilienceConfig::default(),
            faults: FaultPlane::default(),
            batch: BatchConfig::default(),
            eco: EcoConfig::default(),
        }
    }
}

/// The PatLabor router.
///
/// Construct once (table generation is the expensive part), then call
/// [`PatLabor::route`] per net — the intended usage pattern for routing
/// millions of nets. Internally this is a handle to a long-lived
/// [`Engine`]; cloning shares the table, cache and fault plane rather
/// than duplicating them. Long-lived services (the `patlabor serve`
/// daemon) use the [`Engine`]/[`Session`] API directly.
///
/// # Example
///
/// ```
/// use patlabor::{Net, PatLabor, Point, RouteSource};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let router = PatLabor::new();
/// let net = Net::new(vec![Point::new(0, 0), Point::new(5, 9), Point::new(9, 4)])?;
/// let outcome = router.route(&net)?;
/// assert!(!outcome.frontier.is_empty());
/// assert_eq!(outcome.provenance.source, RouteSource::ExactLut);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct PatLabor {
    engine: Engine,
}

impl PatLabor {
    /// Builds a router with freshly generated λ = 5 lookup tables and the
    /// default trained policy.
    pub fn new() -> Self {
        PatLabor { engine: Engine::new() }
    }

    /// Builds a router with the given configuration (generating tables for
    /// its λ).
    pub fn with_config(config: RouterConfig) -> Self {
        PatLabor { engine: Engine::with_config(config) }
    }

    /// Builds a router around pre-generated tables (e.g. loaded from disk
    /// via [`LookupTable::load`]).
    pub fn with_table(table: LookupTable) -> Self {
        PatLabor { engine: Engine::with_table(table) }
    }

    /// Builds a router around pre-generated tables with an explicit
    /// configuration. `config.lambda` is overridden by the table's λ —
    /// the table, not the config, decides which degrees are tabulated.
    pub fn with_table_and_config(table: LookupTable, config: RouterConfig) -> Self {
        PatLabor {
            engine: Engine::with_table_and_config(table, config),
        }
    }

    /// Wraps an existing engine handle in the classic router API.
    pub fn from_engine(engine: Engine) -> Self {
        PatLabor { engine }
    }

    /// The underlying long-lived engine handle (an `Arc` clone away from
    /// being shared with a server).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Unwraps into the underlying engine handle.
    pub fn into_engine(self) -> Engine {
        self.engine
    }

    /// Replaces the pin-selection policy (e.g. with a freshly trained one).
    #[must_use]
    pub fn with_policy(self, policy: Policy) -> Self {
        PatLabor { engine: self.engine.with_policy(policy) }
    }

    /// Replaces the local-search configuration.
    #[must_use]
    pub fn with_local_search(self, local_search: LocalSearchConfig) -> Self {
        PatLabor {
            engine: self.engine.with_local_search(local_search),
        }
    }

    /// Replaces the frontier-cache configuration, dropping any cached
    /// entries (and the old counters) in the process.
    #[must_use]
    pub fn with_cache(self, cache: CacheConfig) -> Self {
        PatLabor { engine: self.engine.with_cache(cache) }
    }

    /// Replaces the resilience configuration (armed fallback rungs,
    /// frontier validation, per-net deadline).
    #[must_use]
    pub fn with_resilience(self, resilience: ResilienceConfig) -> Self {
        PatLabor {
            engine: self.engine.with_resilience(resilience),
        }
    }

    /// Replaces the fault plane (deterministic fault injection).
    #[must_use]
    pub fn with_faults(self, faults: FaultPlane) -> Self {
        PatLabor { engine: self.engine.with_faults(faults) }
    }

    /// Replaces the deadline clock (tests inject a
    /// [`crate::resilience::VirtualClock`] so deadline behavior is a pure
    /// function of the configuration).
    #[must_use]
    pub fn with_clock(self, clock: Arc<dyn Clock>) -> Self {
        PatLabor { engine: self.engine.with_clock(clock) }
    }

    /// The lookup tables backing this router — a snapshot of the
    /// engine's current table generation (see [`Engine::reload_table`]).
    pub fn table(&self) -> Arc<LookupTable> {
        self.engine.table()
    }

    /// The active pin-selection policy.
    pub fn policy(&self) -> &Policy {
        self.engine.policy()
    }

    /// The router's configuration (the batch driver reads its chunk
    /// tuning from here).
    pub fn config(&self) -> &RouterConfig {
        self.engine.config()
    }

    /// Routes one net through the staged pipeline, returning the Pareto
    /// frontier together with its provenance.
    ///
    /// Exact (the full Pareto frontier, one witness tree per point) for
    /// degrees `≤ λ`; the local-search approximation above. The outcome's
    /// [`crate::pipeline::RouteProvenance`] records which stage answered
    /// and how much work each stage did.
    ///
    /// A rung that cannot serve — missing table degree or pattern,
    /// corrupted cost row caught by validation, expired deadline, or a
    /// panic — falls through the degradation ladder
    ///
    /// ```text
    /// cache → LUT query → numeric DW → baseline      (degree ≤ λ)
    ///         local search → baseline                (degree > λ)
    /// ```
    ///
    /// and the descent is recorded in the provenance trace. Only when
    /// every armed rung fails does the call return a structured
    /// [`RouteError`]; with the default [`ResilienceConfig`] the baseline
    /// rung is always armed, so errors require a fault nothing can absorb
    /// (an `AllRungs` stage panic) or a disarmed ladder
    /// ([`ResilienceConfig::strict`]).
    ///
    /// Routing is deterministic: the frontier is bit-identical regardless
    /// of the frontier cache's state (only the provenance differs between
    /// a cache hit and a full query).
    pub fn route(&self, net: &Net) -> Result<RouteOutcome, RouteError> {
        self.engine.route(net)
    }

    /// [`Engine::route_session`] through the classic handle: one net
    /// under a per-request [`Session`] (deadline override, fault-seed
    /// override, request identity).
    pub fn route_session(&self, net: &Net, session: &Session) -> Result<RouteOutcome, RouteError> {
        self.engine.route_session(net, session)
    }

    /// [`PatLabor::route`], discarding provenance.
    ///
    /// Convenience for callers that only want the frontier (benchmarks,
    /// examples, comparisons against baselines). The full degradation
    /// ladder applies, so a table fault demotes the net to a lower rung
    /// instead of failing.
    ///
    /// # Panics
    ///
    /// Only when even the baseline rung cannot serve: every fallback
    /// disarmed ([`ResilienceConfig::strict`]) on a net the tables cannot
    /// answer, or a fault nothing can absorb (an `AllRungs` stage panic).
    /// With the default [`ResilienceConfig`] the baseline rung is always
    /// armed and this method never panics.
    pub fn route_frontier(&self, net: &Net) -> ParetoSet<RoutingTree> {
        match self.route(net) {
            Ok(outcome) => outcome.frontier,
            Err(e) => panic!("routing failed with every armed rung exhausted: {e}"),
        }
    }

    /// Frontier-cache counters, or `None` when the cache is disabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.engine.cache_stats()
    }

    /// Per-shard frontier-cache counters (hits, misses, occupancy, lock
    /// contention), or `None` when the cache is disabled. The scaling
    /// bench reads these to spot hot shards instead of averaging them
    /// away in the aggregate [`CacheStats`].
    pub fn cache_shard_stats(&self) -> Option<Vec<ShardStats>> {
        self.engine.cache_shard_stats()
    }

    /// Whether `route` is exact for this degree.
    pub fn is_exact_for(&self, degree: usize) -> bool {
        self.engine.is_exact_for(degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::frontier_consistent;
    use crate::pipeline::RouteSource;
    use crate::resilience::{
        Fault, FaultKind, FaultPlane, FaultScope, Rung, RungOutcome, VirtualClock,
    };
    use patlabor_dw::{numeric, DwConfig};
    use patlabor_geom::Point;
    use std::panic::{self, AssertUnwindSafe};
    use std::time::Duration;

    fn random_net(seed: &mut u64, degree: usize, span: u64) -> Net {
        let mut rng = move || {
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            *seed
        };
        Net::new(
            (0..degree)
                .map(|_| Point::new((rng() % span) as i64, (rng() % span) as i64))
                .collect(),
        )
        .unwrap()
    }

    fn router4() -> PatLabor {
        PatLabor::with_table(crate::LutBuilder::new(4).threads(2).build())
    }

    #[test]
    fn small_nets_are_exact() {
        let router = PatLabor::new();
        let mut seed = 2u64;
        for degree in 3..=5 {
            let net = random_net(&mut seed, degree, 60);
            let outcome = router.route(&net).expect("tabulated degree");
            let exact = numeric::pareto_frontier(&net, &DwConfig::default());
            assert_eq!(outcome.frontier.cost_vec(), exact.cost_vec());
            assert!(router.is_exact_for(degree));
            assert!(outcome.provenance.source.is_exact());
            assert_eq!(outcome.provenance.degree, degree);
            assert!(!outcome.provenance.trace.degraded());
        }
    }

    #[test]
    fn large_nets_use_local_search() {
        let router = PatLabor::new();
        let mut seed = 4u64;
        let net = random_net(&mut seed, 15, 150);
        assert!(!router.is_exact_for(15));
        let outcome = router.route(&net).expect("local search cannot fail");
        assert_eq!(outcome.provenance.source, RouteSource::LocalSearch);
        assert!(outcome.provenance.counters.local_search_rounds >= 1);
        assert!(outcome.provenance.counters.local_search_candidates >= 1);
        assert_eq!(outcome.provenance.trace.served_by(), Some(Rung::LocalSearch));
        assert!(!outcome.frontier.is_empty());
        for (c, t) in outcome.frontier.iter() {
            t.validate(&net).unwrap();
            assert_eq!((c.wirelength, c.delay), t.objectives());
        }
    }

    #[test]
    fn router_from_loaded_table() {
        let table = crate::LutBuilder::new(4).threads(2).build();
        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        let loaded = crate::LookupTable::read_from(buf.as_slice()).unwrap();
        let router = PatLabor::with_table(loaded);
        let net = Net::new(vec![
            Point::new(0, 0),
            Point::new(7, 3),
            Point::new(2, 9),
            Point::new(8, 8),
        ])
        .unwrap();
        let exact = numeric::pareto_frontier(&net, &DwConfig::default());
        assert_eq!(router.route_frontier(&net).cost_vec(), exact.cost_vec());
    }

    #[test]
    fn provenance_distinguishes_cache_hits_from_full_queries() {
        let router = PatLabor::new();
        let mut seed = 9u64;
        let net = random_net(&mut seed, 4, 50);
        let first = router.route(&net).unwrap();
        assert_eq!(first.provenance.source, RouteSource::ExactLut);
        assert_eq!(first.provenance.counters.cache_probes, 1);
        assert_eq!(first.provenance.counters.cache_hits, 0);
        assert!(first.provenance.counters.candidates_scored >= 1);
        let second = router.route(&net).unwrap();
        assert_eq!(second.provenance.source, RouteSource::CacheHit);
        assert_eq!(second.provenance.counters.cache_hits, 1);
        // A cache hit scores nothing and materializes winners only.
        assert_eq!(second.provenance.counters.candidates_scored, 0);
        assert_eq!(
            second.provenance.counters.trees_materialized as usize,
            second.frontier.len()
        );
        // A cache miss is the normal path, not a degradation.
        assert!(!first.provenance.trace.degraded());
        assert_eq!(second.provenance.trace.served_by(), Some(Rung::Cache));
        // The frontier itself is bit-identical either way.
        assert_eq!(first.frontier, second.frontier);
    }

    #[test]
    fn adaptive_bypass_stops_probing_a_useless_cache() {
        use crate::cache::CacheConfig;
        // A 100% hit-rate floor no real workload can meet: the bypass
        // must fire as soon as the 8-probe warmup window closes.
        let router = PatLabor::new().with_cache(CacheConfig {
            bypass_warmup: 8,
            bypass_threshold_permille: 1000,
            ..CacheConfig::default()
        });
        let mut seed = 11u64;
        let nets: Vec<Net> = (0..20).map(|_| random_net(&mut seed, 4, 5000)).collect();
        let mut post_bypass = 0;
        for net in &nets {
            let was_bypassed = router.cache_stats().unwrap().bypassed;
            let outcome = router.route(net).unwrap();
            if was_bypassed {
                post_bypass += 1;
                assert_eq!(
                    outcome.provenance.counters.cache_probes, 0,
                    "a bypassed cache must not be probed"
                );
                assert_eq!(outcome.provenance.source, RouteSource::ExactLut);
            }
        }
        let stats = router.cache_stats().unwrap();
        assert!(stats.bypassed, "warmup elapsed below the floor");
        assert!(post_bypass > 0, "some nets must have routed past the bypass");
        assert_eq!(
            stats.hits + stats.misses,
            8,
            "probing must stop exactly at the warmup boundary"
        );
        // The batch report surfaces the retirement.
        let (_, report) = router.route_batch_with_report(&nets[..3], 1);
        assert!(report.cache_bypassed);
        assert!(report.to_string().contains("cache bypassed"));
    }

    #[test]
    fn degree_2_is_closed_form() {
        let router = PatLabor::new();
        let net = Net::new(vec![Point::new(0, 0), Point::new(3, 4)]).unwrap();
        let outcome = router.route(&net).unwrap();
        assert_eq!(outcome.provenance.source, RouteSource::ClosedForm);
        assert_eq!(outcome.provenance.counters.trees_materialized, 1);
        assert_eq!(outcome.provenance.counters.cache_probes, 0);
        assert_eq!(outcome.provenance.trace.served_by(), Some(Rung::ClosedForm));
        assert_eq!(outcome.frontier.len(), 1);
    }

    #[test]
    fn strict_gutted_table_reports_missing_degree_not_panic() {
        let mut table = crate::LutBuilder::new(4).threads(1).build();
        table.remove_degree(3);
        // Strict mode: no fallback rungs — the pre-ladder fail-fast
        // contract that oracles assert on.
        let router = PatLabor::with_table_and_config(
            table,
            RouterConfig {
                resilience: ResilienceConfig::strict(),
                ..RouterConfig::default()
            },
        );
        let net = Net::new(vec![Point::new(0, 0), Point::new(5, 2), Point::new(2, 7)]).unwrap();
        match router.route(&net) {
            Err(RouteError::MissingDegree { degree: 3, lambda: 4 }) => {}
            other => panic!("expected MissingDegree, got {other:?}"),
        }
        // Degree 4 still routes fine — the failure is per-degree.
        let ok = Net::new(vec![
            Point::new(0, 0),
            Point::new(5, 2),
            Point::new(2, 7),
            Point::new(8, 4),
        ])
        .unwrap();
        assert!(router.route(&ok).is_ok());
    }

    #[test]
    fn gutted_table_degrades_to_numeric_dw() {
        let mut table = crate::LutBuilder::new(4).threads(1).build();
        table.remove_degree(3);
        let router = PatLabor::with_table(table);
        let net = Net::new(vec![Point::new(0, 0), Point::new(5, 2), Point::new(2, 7)]).unwrap();
        let outcome = router.route(&net).expect("the DW rung absorbs the missing degree");
        assert_eq!(outcome.provenance.source, RouteSource::NumericDw);
        assert!(outcome.provenance.source.is_exact());
        let exact = numeric::pareto_frontier(&net, &DwConfig::default());
        assert_eq!(outcome.frontier.cost_vec(), exact.cost_vec());
        let trace = outcome.provenance.trace;
        assert!(trace.degraded());
        assert_eq!(trace.to_string(), "lut:missing-degree -> numeric-dw:served");
    }

    #[test]
    fn injected_corrupt_row_is_validated_away() {
        let faults = FaultPlane::seeded(11).with_fault(Fault {
            kind: FaultKind::CorruptedRow,
            scope: FaultScope::Primary,
            probability: 1.0,
        });
        let router = router4().with_faults(faults);
        let mut seed = 5u64;
        let net = random_net(&mut seed, 4, 60);
        let outcome = router.route(&net).unwrap();
        assert_eq!(outcome.provenance.source, RouteSource::NumericDw);
        assert!(outcome
            .provenance
            .trace
            .contains(Rung::Lut, RungOutcome::CorruptRow));
        // The served frontier is the uncorrupted exact answer.
        let exact = numeric::pareto_frontier(&net, &DwConfig::default());
        assert_eq!(outcome.frontier.cost_vec(), exact.cost_vec());
        assert!(frontier_consistent(&outcome.frontier));
    }

    #[test]
    fn injected_stage_panic_is_absorbed_by_the_ladder() {
        let faults = FaultPlane::seeded(2).with_fault(Fault {
            kind: FaultKind::StagePanic,
            scope: FaultScope::Primary,
            probability: 1.0,
        });
        let router = router4().with_faults(faults);
        let mut seed = 6u64;
        // Small net: the LUT rung panics, numeric DW absorbs it exactly.
        let small = random_net(&mut seed, 4, 50);
        let outcome = router.route(&small).unwrap();
        assert_eq!(outcome.provenance.source, RouteSource::NumericDw);
        assert!(outcome
            .provenance
            .trace
            .contains(Rung::Lut, RungOutcome::Panicked));
        // Large net: local search panics, the baseline serves.
        let large = random_net(&mut seed, 9, 90);
        let outcome = router.route(&large).unwrap();
        assert_eq!(outcome.provenance.source, RouteSource::Baseline);
        assert!(!outcome.provenance.source.is_exact());
        assert!(outcome
            .provenance
            .trace
            .contains(Rung::LocalSearch, RungOutcome::Panicked));
        for (c, t) in outcome.frontier.iter() {
            t.validate(&large).unwrap();
            assert_eq!((c.wirelength, c.delay), t.objectives());
        }
    }

    #[test]
    fn unabsorbed_panic_resumes_after_exhaustion() {
        let faults = FaultPlane::seeded(4).with_fault(Fault {
            kind: FaultKind::StagePanic,
            scope: FaultScope::AllRungs,
            probability: 1.0,
        });
        let router = router4().with_faults(faults);
        let mut seed = 7u64;
        let net = random_net(&mut seed, 4, 50);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| router.route(&net)));
        let payload = caught.expect_err("every rung panics; nothing can absorb it");
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.contains("injected fault: stage panic"), "{msg}");
    }

    #[test]
    fn stage_delay_with_deadline_walks_to_the_baseline() {
        let faults = FaultPlane::seeded(0)
            .with_fault(Fault {
                kind: FaultKind::StageDelay,
                scope: FaultScope::Primary,
                probability: 1.0,
            })
            .with_delay(Duration::from_millis(10));
        let config = RouterConfig {
            resilience: ResilienceConfig {
                deadline: Some(Duration::from_millis(5)),
                ..ResilienceConfig::default()
            },
            faults,
            ..RouterConfig::default()
        };
        let router = PatLabor::with_table_and_config(
            crate::LutBuilder::new(4).threads(2).build(),
            config,
        )
        .with_clock(Arc::new(VirtualClock::new()));
        let mut seed = 8u64;
        let net = random_net(&mut seed, 4, 60);
        let outcome = router.route(&net).unwrap();
        assert_eq!(outcome.provenance.source, RouteSource::Baseline);
        assert_eq!(
            outcome.provenance.trace.to_string(),
            "lut:deadline -> numeric-dw:deadline -> baseline:served"
        );
        assert!(outcome.provenance.counters.budget_checks >= 2);
        for (c, t) in outcome.frontier.iter() {
            t.validate(&net).unwrap();
            assert_eq!((c.wirelength, c.delay), t.objectives());
        }
    }

    #[test]
    fn a_generous_deadline_does_not_change_the_route() {
        let config = RouterConfig {
            resilience: ResilienceConfig {
                deadline: Some(Duration::from_secs(3600)),
                ..ResilienceConfig::default()
            },
            ..RouterConfig::default()
        };
        let plain = router4();
        let budgeted = PatLabor::with_table_and_config(
            crate::LutBuilder::new(4).threads(2).build(),
            config,
        );
        let mut seed = 12u64;
        for degree in [3, 4, 9] {
            let net = random_net(&mut seed, degree, 70);
            let a = plain.route(&net).unwrap();
            let b = budgeted.route(&net).unwrap();
            assert_eq!(a.frontier.cost_vec(), b.frontier.cost_vec());
            assert_eq!(a.provenance.source, b.provenance.source);
            assert!(!b.provenance.trace.degraded());
            assert!(b.provenance.counters.budget_checks >= 1);
        }
    }
}
