//! Incremental (ECO) rerouting: net deltas and replay reuse.
//!
//! Production routing traffic is not i.i.d. fresh nets — it is small
//! edits to placed designs: a pin nudged by legalization, a sink added
//! by buffering, a blockage dropped over a macro. The congruence-class
//! machinery makes many of those edits nearly free to answer: both
//! objectives are invariant under translation and the D4 symmetries, so
//! an edit that preserves the net's `(canonical pattern key, canonical
//! gap vector)` class leaves the *winning topology ids* of the previous
//! route exactly correct for the new geometry. [`crate::Engine::reroute`]
//! exploits that: it classifies the mutated net and, when the class is
//! unchanged and the winners are resident in the frontier cache, replays
//! them against the new pins without touching the LUT's candidate pool —
//! provenance [`crate::RouteSource::Reused`], `candidates_scored == 0`.
//!
//! This module owns the delta vocabulary ([`NetDelta`], [`DeltaKind`]),
//! the batch-driver job type ([`DeltaJob`]) and the staleness policy
//! ([`EcoConfig`]); the replay fast path itself lives on the engine
//! (DESIGN.md §16).
//!
//! # Totality
//!
//! [`NetDelta::apply`] is infallible by construction: out-of-range
//! indices clamp into range and a `RemoveSink` that would leave fewer
//! than two pins is a no-op. Callers (the wire layer, the CLI's edits
//! file, proptest generators) can therefore produce deltas freely
//! without a validation handshake — every delta denotes *some* edit.

use patlabor_geom::{Net, Point};

use crate::engine::Session;

/// One edit applied to a placed net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// Move pin `index` (0 = the source) to an absolute position. An
    /// out-of-range index clamps to the last pin.
    MovePin {
        /// Pin index into [`Net::pins`] (0 is the source).
        index: usize,
        /// The pin's new position.
        to: Point,
    },
    /// Append a new sink.
    AddSink {
        /// Position of the new sink.
        at: Point,
    },
    /// Remove sink `index` (0 = the first sink; the source cannot be
    /// removed). An out-of-range index clamps to the last sink; removing
    /// the only sink of a degree-2 net is a no-op.
    RemoveSink {
        /// Sink index (pin `index + 1`).
        index: usize,
    },
    /// Translate the whole net rigidly. Always class-preserving: the
    /// canonical pattern key and gap vector are translation-invariant.
    Translate {
        /// Horizontal offset.
        dx: i64,
        /// Vertical offset.
        dy: i64,
    },
    /// Push every pin strictly inside the rectangle `[min, max]` out to
    /// its nearest boundary point (ties broken left, right, bottom, top
    /// — deterministic). Models a blockage dropped over placed pins. A
    /// degenerate rectangle (`min` not component-wise ≤ `max`) is
    /// normalized first.
    BlockageMask {
        /// One corner of the blockage rectangle.
        min: Point,
        /// The opposite corner.
        max: Point,
    },
}

impl DeltaKind {
    /// Stable machine-readable label (the wire protocol, the CLI edits
    /// file and the verify harness all speak these).
    pub fn label(&self) -> &'static str {
        match self {
            DeltaKind::MovePin { .. } => "move-pin",
            DeltaKind::AddSink { .. } => "add-sink",
            DeltaKind::RemoveSink { .. } => "remove-sink",
            DeltaKind::Translate { .. } => "translate",
            DeltaKind::BlockageMask { .. } => "blockage-mask",
        }
    }
}

/// An edit against a concrete base net: the unit of the ECO API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetDelta {
    /// The net as it was when last routed.
    pub base: Net,
    /// The edit to apply.
    pub kind: DeltaKind,
}

impl NetDelta {
    /// Pairs a base net with an edit.
    pub fn new(base: Net, kind: DeltaKind) -> Self {
        NetDelta { base, kind }
    }

    /// The edited net. Total: see the module docs on clamping and no-op
    /// semantics — the result is always a valid net (≥ 2 pins).
    pub fn apply(&self) -> Net {
        let mut pins: Vec<Point> = self.base.pins().to_vec();
        match self.kind {
            DeltaKind::MovePin { index, to } => {
                let i = index.min(pins.len() - 1);
                pins[i] = to;
            }
            DeltaKind::AddSink { at } => pins.push(at),
            DeltaKind::RemoveSink { index } => {
                if pins.len() > 2 {
                    let i = 1 + index.min(pins.len() - 2);
                    pins.remove(i);
                }
            }
            DeltaKind::Translate { dx, dy } => {
                for p in pins.iter_mut() {
                    *p = Point::new(p.x + dx, p.y + dy);
                }
            }
            DeltaKind::BlockageMask { min, max } => {
                let (x0, x1) = (min.x.min(max.x), min.x.max(max.x));
                let (y0, y1) = (min.y.min(max.y), min.y.max(max.y));
                for p in pins.iter_mut() {
                    if p.x > x0 && p.x < x1 && p.y > y0 && p.y < y1 {
                        *p = project_to_boundary(*p, x0, x1, y0, y1);
                    }
                }
            }
        }
        Net::new(pins).expect("delta application preserves the two-pin minimum")
    }
}

/// Nearest boundary point of the rectangle for a strictly interior `p`,
/// ties broken in the fixed order left, right, bottom, top.
fn project_to_boundary(p: Point, x0: i64, x1: i64, y0: i64, y1: i64) -> Point {
    let dl = p.x - x0;
    let dr = x1 - p.x;
    let db = p.y - y0;
    let dt = y1 - p.y;
    let m = dl.min(dr).min(db).min(dt);
    if m == dl {
        Point::new(x0, p.y)
    } else if m == dr {
        Point::new(x1, p.y)
    } else if m == db {
        Point::new(p.x, y0)
    } else {
        Point::new(p.x, y1)
    }
}

/// Staleness policy for replay reuse, part of [`crate::RouterConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcoConfig {
    /// Most consecutive edits a net may be served from replay before a
    /// fresh route is forced. Replay is exact (the winner set is a pure
    /// function of the unchanged congruence class), so this is a policy
    /// bound on provenance-chain length, not a correctness knob: a fresh
    /// route re-anchors the lineage and resets the edit counter.
    pub staleness_cap: u32,
}

impl Default for EcoConfig {
    fn default() -> Self {
        EcoConfig { staleness_cap: 32 }
    }
}

/// One slot of a delta batch ([`crate::Engine::route_batch_deltas`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaJob {
    /// The edit to apply and route.
    pub delta: NetDelta,
    /// Edits already served from replay for this net's lineage (what a
    /// prior outcome's `Reused { staleness }` reported; 0 after a fresh
    /// route).
    pub prior_edits: u32,
    /// The per-request session (deadline, identity, fault seed).
    pub session: Session,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Net {
        Net::new(vec![
            Point::new(0, 0),
            Point::new(10, 2),
            Point::new(4, 8),
            Point::new(7, 5),
        ])
        .expect("valid net")
    }

    #[test]
    fn move_pin_clamps_out_of_range_indices() {
        let d = NetDelta::new(base(), DeltaKind::MovePin { index: 99, to: Point::new(1, 1) });
        let edited = d.apply();
        assert_eq!(edited.pins()[3], Point::new(1, 1));
        assert_eq!(edited.degree(), 4);
        let d = NetDelta::new(base(), DeltaKind::MovePin { index: 0, to: Point::new(2, 2) });
        assert_eq!(d.apply().source(), Point::new(2, 2));
    }

    #[test]
    fn add_and_remove_sinks_change_degree() {
        let d = NetDelta::new(base(), DeltaKind::AddSink { at: Point::new(3, 3) });
        assert_eq!(d.apply().degree(), 5);
        let d = NetDelta::new(base(), DeltaKind::RemoveSink { index: 1 });
        let edited = d.apply();
        assert_eq!(edited.degree(), 3);
        assert_eq!(edited.pins(), &[Point::new(0, 0), Point::new(10, 2), Point::new(7, 5)]);
    }

    #[test]
    fn remove_sink_never_breaks_the_two_pin_minimum() {
        let tiny = Net::new(vec![Point::new(0, 0), Point::new(5, 5)]).expect("valid");
        let d = NetDelta::new(tiny.clone(), DeltaKind::RemoveSink { index: 0 });
        assert_eq!(d.apply(), tiny, "degree-2 removal is a no-op");
    }

    #[test]
    fn translate_shifts_every_pin() {
        let d = NetDelta::new(base(), DeltaKind::Translate { dx: 5, dy: -3 });
        let edited = d.apply();
        assert_eq!(edited.source(), Point::new(5, -3));
        assert_eq!(edited.pins()[1], Point::new(15, -1));
        assert_eq!(edited.degree(), 4);
    }

    #[test]
    fn blockage_projects_interior_pins_to_the_nearest_edge() {
        // Rect [2,8]×[2,8]; only (4,8) is on the boundary... (7,5) and
        // (4,8): (7,5) is interior (nearest edge: right, distance 1);
        // (4,8) sits on the top edge and must not move.
        let d = NetDelta::new(
            base(),
            DeltaKind::BlockageMask { min: Point::new(2, 2), max: Point::new(8, 8) },
        );
        let edited = d.apply();
        assert_eq!(edited.pins()[0], Point::new(0, 0), "outside pins untouched");
        assert_eq!(edited.pins()[2], Point::new(4, 8), "boundary pins untouched");
        assert_eq!(edited.pins()[3], Point::new(8, 5), "interior pin pushed right");
        // Swapped corners normalize to the same rectangle.
        let swapped = NetDelta::new(
            base(),
            DeltaKind::BlockageMask { min: Point::new(8, 8), max: Point::new(2, 2) },
        );
        assert_eq!(swapped.apply(), edited);
    }

    #[test]
    fn blockage_tie_break_is_deterministic() {
        // Dead center of [0,10]×[0,10]: all four edges at distance 5;
        // the fixed order picks "left".
        let centered = Net::new(vec![Point::new(5, 5), Point::new(20, 20)]).expect("valid");
        let d = NetDelta::new(
            centered,
            DeltaKind::BlockageMask { min: Point::new(0, 0), max: Point::new(10, 10) },
        );
        assert_eq!(d.apply().source(), Point::new(0, 5));
    }

    use crate::cache::CacheKey;
    use crate::engine::{Engine, Session};
    use crate::pipeline::RouteSource;
    use crate::{LutBuilder, RouterConfig};

    fn engine4() -> Engine {
        Engine::with_table(LutBuilder::new(4).threads(2).build())
    }

    /// xorshift64 — the same deterministic generator the router tests use.
    fn rng(seed: &mut u64) -> u64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    }

    fn random_kind(seed: &mut u64, degree: usize) -> DeltaKind {
        let p = |seed: &mut u64| {
            Point::new((rng(seed) % 64) as i64, (rng(seed) % 64) as i64)
        };
        match rng(seed) % 5 {
            0 => DeltaKind::MovePin { index: (rng(seed) as usize) % degree, to: p(seed) },
            1 => DeltaKind::AddSink { at: p(seed) },
            2 => DeltaKind::RemoveSink { index: (rng(seed) as usize) % degree },
            3 => DeltaKind::Translate {
                dx: (rng(seed) % 100) as i64 - 50,
                dy: (rng(seed) % 100) as i64 - 50,
            },
            _ => {
                let a = p(seed);
                let b = p(seed);
                DeltaKind::BlockageMask { min: a, max: b }
            }
        }
    }

    /// Whether an edit preserved the congruence class, computed
    /// independently of the reroute path: both nets must classify and
    /// canonicalize to the same cache key.
    fn class_preserved(engine: &Engine, base: &Net, mutated: &Net) -> bool {
        if base.degree() != mutated.degree() {
            return false;
        }
        match (engine.table().classify(base), engine.table().classify(mutated)) {
            (Some(a), Some(b)) => CacheKey::from_class(&a) == CacheKey::from_class(&b),
            _ => false,
        }
    }

    /// Satellite property test: across every [`DeltaKind`], an edit that
    /// preserves the congruence class is served from replay (provenance
    /// `Reused`, zero LUT candidates scored) and an edit that breaks it
    /// is never labeled `Reused` — while the frontier always equals
    /// routing the mutated net from scratch.
    #[test]
    fn every_delta_kind_replays_iff_the_class_is_preserved() {
        let engine = engine4();
        let scratch = engine4(); // independent tables ⇒ independent cache
        let nets: Vec<Net> = patlabor_netgen::iccad_like_suite(0xec0, 60, 4)
            .into_iter()
            .filter(|n| (3..=4).contains(&n.degree()))
            .collect();
        assert!(nets.len() >= 20, "suite must supply tabulated nets");
        let mut seed = 0x05ee_dec0_u64;
        let mut replayed = 0usize;
        let mut broken = 0usize;
        let mut seen_kinds = std::collections::HashSet::new();
        for (i, net) in nets.iter().enumerate() {
            // Warm the winners for this net's class.
            engine.route(net).expect("base route");
            let kind = random_kind(&mut seed, net.degree());
            seen_kinds.insert(kind.label());
            let delta = NetDelta::new(net.clone(), kind);
            let mutated = delta.apply();
            let preserved = class_preserved(&engine, net, &mutated);
            let out = engine
                .reroute_with_staleness(&delta, 0, &Session::new(i as u64))
                .expect("reroute");
            let fresh = scratch.route(&mutated).expect("scratch route");
            assert_eq!(
                out.frontier.cost_vec(),
                fresh.frontier.cost_vec(),
                "net {i} ({}): reroute must equal a scratch route",
                kind.label()
            );
            if preserved {
                assert_eq!(
                    out.provenance.source,
                    RouteSource::Reused { staleness: 1 },
                    "net {i} ({}): class-preserving edits replay",
                    kind.label()
                );
                assert_eq!(
                    out.provenance.counters.candidates_scored, 0,
                    "replay must not score LUT candidates"
                );
                replayed += 1;
            } else {
                assert!(
                    !matches!(out.provenance.source, RouteSource::Reused { .. }),
                    "net {i} ({}): class-breaking edits must not claim reuse",
                    kind.label()
                );
                broken += 1;
            }
        }
        assert_eq!(seen_kinds.len(), 5, "all delta kinds must be exercised");
        assert!(replayed > 0, "some edits must preserve the class (translate always does)");
        assert!(broken > 0, "some edits must break the class");
    }

    /// Satellite: edit N+1 past the staleness cap forces a fresh route
    /// (provenance no longer `Reused`), which resets the counter — the
    /// next edit replays at staleness 1 again.
    #[test]
    fn staleness_cap_forces_a_fresh_route_and_resets_the_counter() {
        let cap = 3u32;
        let engine = Engine::with_table_and_config(
            LutBuilder::new(4).threads(2).build(),
            RouterConfig {
                eco: EcoConfig { staleness_cap: cap },
                ..RouterConfig::default()
            },
        );
        let mut current = Net::new(vec![
            Point::new(0, 0),
            Point::new(9, 2),
            Point::new(3, 7),
            Point::new(6, 5),
        ])
        .expect("valid net");
        let mut prev = engine.route(&current).expect("base route");
        assert_eq!(prev.provenance.source, RouteSource::ExactLut);
        // Edits 1..=cap are served from replay with a growing counter.
        for edit in 1..=cap {
            let delta = NetDelta::new(current.clone(), DeltaKind::Translate { dx: 2, dy: 1 });
            current = delta.apply();
            prev = engine.reroute(&prev, &delta, Session::default()).expect("reroute");
            assert_eq!(prev.provenance.source, RouteSource::Reused { staleness: edit });
        }
        // Edit cap+1 busts the cap: a fresh ladder route answers (for a
        // translate, the warm cache serves it — but NOT as `Reused`).
        let delta = NetDelta::new(current.clone(), DeltaKind::Translate { dx: 2, dy: 1 });
        current = delta.apply();
        prev = engine.reroute(&prev, &delta, Session::default()).expect("reroute");
        assert_eq!(
            prev.provenance.source,
            RouteSource::CacheHit,
            "edit cap+1 must route through the ladder, not replay"
        );
        // The fresh route re-anchored the lineage: the counter restarts.
        let delta = NetDelta::new(current.clone(), DeltaKind::Translate { dx: 2, dy: 1 });
        prev = engine.reroute(&prev, &delta, Session::default()).expect("reroute");
        assert_eq!(prev.provenance.source, RouteSource::Reused { staleness: 1 });
    }

    /// Batch deltas: input order, replay where possible, bit-identical
    /// to serial reroutes at 1 and N threads.
    #[test]
    fn route_batch_deltas_matches_serial_at_every_thread_count() {
        let engine = engine4();
        let nets: Vec<Net> = patlabor_netgen::iccad_like_suite(0xba7c, 24, 4)
            .into_iter()
            .filter(|n| (3..=4).contains(&n.degree()))
            .collect();
        for net in &nets {
            engine.route(net).expect("warm route");
        }
        let mut seed = 0xfeed_u64;
        let jobs: Vec<DeltaJob> = nets
            .iter()
            .enumerate()
            .map(|(i, net)| DeltaJob {
                delta: NetDelta::new(net.clone(), random_kind(&mut seed, net.degree())),
                prior_edits: 0,
                session: Session::new(i as u64),
            })
            .collect();
        let serial: Vec<_> = jobs
            .iter()
            .map(|j| {
                engine
                    .reroute_with_staleness(&j.delta, j.prior_edits, &j.session)
                    .expect("serial reroute")
                    .frontier
            })
            .collect();
        for threads in [1usize, 4] {
            let (results, stats) = engine.route_batch_deltas(&jobs, threads);
            assert_eq!(results.len(), jobs.len());
            for (i, result) in results.into_iter().enumerate() {
                assert_eq!(
                    result.expect("batch reroute").frontier,
                    serial[i],
                    "threads = {threads}, job {i}"
                );
            }
            assert_eq!(
                stats.per_worker.iter().map(|w| w.nets).sum::<u64>() as usize,
                jobs.len()
            );
        }
    }

    #[test]
    fn labels_are_stable_and_distinct() {
        let kinds = [
            DeltaKind::MovePin { index: 0, to: Point::new(0, 0) },
            DeltaKind::AddSink { at: Point::new(0, 0) },
            DeltaKind::RemoveSink { index: 0 },
            DeltaKind::Translate { dx: 0, dy: 0 },
            DeltaKind::BlockageMask { min: Point::new(0, 0), max: Point::new(1, 1) },
        ];
        let labels: std::collections::HashSet<&str> =
            kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
        assert!(labels.contains("move-pin"));
        assert!(labels.contains("blockage-mask"));
    }
}
