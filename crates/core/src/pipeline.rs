//! Staged-pipeline vocabulary: stages, provenance, and structured errors.
//!
//! [`crate::PatLabor::route`] is organized as an explicit pipeline
//!
//! ```text
//!            ┌───────────┐   degree > λ    ┌──────────────┐
//!  Net ────▶ │ Classify  │ ──────────────▶ │ LocalSearch  │ ──▶ Materialize
//!            └───────────┘                 └──────────────┘
//!                  │ degree ≤ λ (NetClass)
//!                  ▼
//!            ┌─────────────┐    hit   ┌─────────────┐
//!            │ CacheLookup │ ───────▶ │ Materialize │ ──▶ RouteOutcome
//!            └─────────────┘          └─────────────┘
//!                  │ miss
//!                  ▼
//!            ┌──────────┐
//!            │ LutQuery │ ──▶ Materialize (survivors only) ──▶ RouteOutcome
//!            └──────────┘
//! ```
//!
//! Every route returns a [`RouteOutcome`]: the Pareto frontier plus a
//! [`RouteProvenance`] recording which stage answered ([`RouteSource`])
//! and per-stage work counters ([`StageCounters`]). Failures are the
//! structured [`RouteError`] — no panics on the serving path.

use std::fmt;

use patlabor_pareto::ParetoSet;
use patlabor_tree::RoutingTree;

use crate::resilience::DegradationTrace;

/// The stages of the routing pipeline, in execution order.
///
/// `Classify` gates every net; exactly one of `CacheLookup`+`LutQuery`
/// (tabulated degrees) or `LocalSearch` (above λ) produces topologies; and
/// `Materialize` turns them into witness [`RoutingTree`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteStage {
    /// Canonicalize the net into a [`patlabor_geom::NetClass`] and pick
    /// its serving path.
    Classify,
    /// Probe the frontier cache for the class's winning topology ids.
    CacheLookup,
    /// Score the stored candidate topologies by dot product and prune.
    LutQuery,
    /// Policy-guided local search for degrees above λ.
    LocalSearch,
    /// Instantiate surviving topologies as witness trees.
    Materialize,
}

/// Which stage produced the answer — the headline provenance fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteSource {
    /// Degree-2 closed form: the direct source→sink tree, no table.
    ClosedForm,
    /// Winning ids replayed from the frontier cache.
    CacheHit,
    /// Full lookup-table query (score every candidate, prune, keep
    /// survivors).
    ExactLut,
    /// Fresh numeric Pareto-DW enumeration — the degradation ladder's
    /// exact fallback when the cache and LUT rungs cannot serve.
    NumericDw,
    /// Local-search approximation for degree > λ.
    LocalSearch,
    /// Baseline heuristic sweep — the ladder's approximate last resort.
    Baseline,
    /// ECO replay: a prior route's winning ids re-evaluated against the
    /// edited geometry because the edit preserved the congruence class.
    /// `staleness` counts edits since the last full route.
    Reused {
        /// Edits applied since the net was last routed from scratch.
        staleness: u32,
    },
}

impl RouteSource {
    /// Short human-readable label (used by the CLI's per-net output).
    pub fn label(self) -> &'static str {
        match self {
            RouteSource::ClosedForm => "closed-form",
            RouteSource::CacheHit => "cache-hit",
            RouteSource::ExactLut => "exact-lut",
            RouteSource::NumericDw => "numeric-dw",
            RouteSource::LocalSearch => "local-search",
            RouteSource::Baseline => "baseline",
            RouteSource::Reused { .. } => "reused",
        }
    }

    /// Whether the frontier is exact (everything except local search and
    /// the baseline sweep).
    pub fn is_exact(self) -> bool {
        !matches!(self, RouteSource::LocalSearch | RouteSource::Baseline)
    }
}

impl fmt::Display for RouteSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-stage work counters for one routed net.
///
/// Counters belonging to stages the net never entered stay zero (e.g.
/// `local_search_rounds` on a tabulated net).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageCounters {
    /// Frontier-cache probes (0 with the cache disabled, else 1).
    pub cache_probes: u32,
    /// Probes answered from the cache (0 or 1).
    pub cache_hits: u32,
    /// Candidate topologies scored by the LutQuery stage.
    pub candidates_scored: u32,
    /// Witness trees built by the Materialize stage.
    pub trees_materialized: u32,
    /// Reroute rounds executed by the LocalSearch stage.
    pub local_search_rounds: u32,
    /// Candidate whole-net trees the LocalSearch stage generated.
    pub local_search_candidates: u32,
    /// Deadline-budget polls (rung-boundary gates plus the cooperative
    /// checkpoints inside the DW / local-search loops). Zero when no
    /// deadline is configured.
    pub budget_checks: u32,
}

/// How one net was answered: the source stage plus per-stage counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteProvenance {
    /// The net's degree.
    pub degree: usize,
    /// The stage that produced the frontier.
    pub source: RouteSource,
    /// Work done per stage.
    pub counters: StageCounters,
    /// Which ladder rungs were attempted and how each ended; a clean
    /// route has one `served` entry ([`DegradationTrace::degraded`] is
    /// `false`).
    pub trace: DegradationTrace,
}

/// A routed net: the Pareto frontier plus its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteOutcome {
    /// The Pareto set of witness trees (exact iff
    /// `provenance.source.is_exact()`).
    pub frontier: ParetoSet<RoutingTree>,
    /// Which stage answered, and how much work each stage did.
    pub provenance: RouteProvenance,
}

/// Structured failures of the routing pipeline.
///
/// These replace the panic paths the pre-pipeline router had: a net the
/// tables cannot serve now surfaces as a value the caller (CLI, batch
/// driver) can report per net instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The Classify stage produced no [`patlabor_geom::NetClass`] for a
    /// degree the tables claim to serve (λ configured beyond the
    /// classifiable maximum). Defense in depth: `Net` construction
    /// already rejects degree-0/1 instances.
    UnclassifiableDegree {
        /// The offending net's degree.
        degree: usize,
    },
    /// The table stores no patterns at all for this degree — a truncated
    /// or corrupt table file (a built table covers every degree `3..=λ`).
    MissingDegree {
        /// The net's degree.
        degree: u8,
        /// The table's claimed λ.
        lambda: u8,
    },
    /// The degree is populated but the net's canonical pattern is absent —
    /// a corrupt or incomplete table.
    MissingPattern {
        /// The net's degree.
        degree: u8,
        /// The canonical pattern key that missed.
        key: u64,
    },
    /// The net's worker panicked and the batch driver isolated it to this
    /// slot ([`crate::PatLabor::route_batch`]'s per-net `catch_unwind`) —
    /// or, inside [`crate::PatLabor::route`], every ladder rung that could
    /// have absorbed the panic was disabled.
    Panicked {
        /// The panic payload, stringified (`&str`/`String` payloads
        /// verbatim; anything else a placeholder).
        payload: String,
    },
    /// Every armed rung of the degradation ladder failed; the trace says
    /// which rungs were tried and why each fell through. Only reachable
    /// when fallback rungs are disabled ([`ResilienceConfig::strict`]) or
    /// a deadline expired with the baseline rung disarmed.
    ///
    /// [`ResilienceConfig::strict`]: crate::resilience::ResilienceConfig::strict
    RungsExhausted {
        /// The net's degree.
        degree: usize,
        /// The failed descent.
        trace: DegradationTrace,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::UnclassifiableDegree { degree } => {
                write!(f, "degree-{degree} net cannot be canonicalized")
            }
            RouteError::MissingDegree { degree, lambda } => write!(
                f,
                "lookup table has no patterns for degree {degree} \
                 (claims lambda = {lambda}); table file truncated or corrupt"
            ),
            RouteError::MissingPattern { degree, key } => write!(
                f,
                "canonical pattern {key:#x} missing from the degree-{degree} \
                 table; table file incomplete or corrupt"
            ),
            RouteError::Panicked { payload } => {
                write!(f, "routing worker panicked: {payload}")
            }
            RouteError::RungsExhausted { degree, trace } => write!(
                f,
                "every armed rung failed for this degree-{degree} net ({trace})"
            ),
        }
    }
}

impl std::error::Error for RouteError {}

/// The per-net result of the pipeline.
pub type RouteResult = Result<RouteOutcome, RouteError>;

/// Aggregate provenance over many routed nets (the CLI's summary line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProvenanceSummary {
    /// Nets answered by the degree-2 closed form.
    pub closed_form: u64,
    /// Nets answered from the frontier cache.
    pub cache_hits: u64,
    /// Nets answered by a full lookup-table query.
    pub exact_lut: u64,
    /// Nets answered by the numeric-DW fallback rung.
    pub numeric_dw: u64,
    /// Nets answered by local search.
    pub local_search: u64,
    /// Nets answered by the baseline fallback rung.
    pub baseline: u64,
    /// Nets answered by ECO replay of a prior route's winners.
    pub reused: u64,
}

impl ProvenanceSummary {
    /// Folds one net's provenance into the tally.
    pub fn record(&mut self, provenance: &RouteProvenance) {
        match provenance.source {
            RouteSource::ClosedForm => self.closed_form += 1,
            RouteSource::CacheHit => self.cache_hits += 1,
            RouteSource::ExactLut => self.exact_lut += 1,
            RouteSource::NumericDw => self.numeric_dw += 1,
            RouteSource::LocalSearch => self.local_search += 1,
            RouteSource::Baseline => self.baseline += 1,
            RouteSource::Reused { .. } => self.reused += 1,
        }
    }

    /// Total nets recorded.
    pub fn total(&self) -> u64 {
        self.closed_form
            + self.cache_hits
            + self.exact_lut
            + self.numeric_dw
            + self.local_search
            + self.baseline
            + self.reused
    }
}

impl fmt::Display for ProvenanceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "closed-form {}, cache-hit {}, exact-lut {}, numeric-dw {}, \
             local-search {}, baseline {}, reused {}",
            self.closed_form,
            self.cache_hits,
            self.exact_lut,
            self.numeric_dw,
            self.local_search,
            self.baseline,
            self.reused
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::resilience::{Rung, RungOutcome};

    #[test]
    fn source_labels_and_exactness() {
        assert_eq!(RouteSource::CacheHit.label(), "cache-hit");
        assert_eq!(RouteSource::LocalSearch.to_string(), "local-search");
        assert_eq!(RouteSource::NumericDw.label(), "numeric-dw");
        assert_eq!(RouteSource::Baseline.label(), "baseline");
        assert_eq!(RouteSource::Reused { staleness: 3 }.label(), "reused");
        assert!(RouteSource::ExactLut.is_exact());
        assert!(RouteSource::ClosedForm.is_exact());
        assert!(RouteSource::NumericDw.is_exact());
        assert!(RouteSource::Reused { staleness: 1 }.is_exact());
        assert!(!RouteSource::LocalSearch.is_exact());
        assert!(!RouteSource::Baseline.is_exact());
    }

    #[test]
    fn errors_display_actionable_messages() {
        let e = RouteError::MissingDegree { degree: 4, lambda: 6 };
        assert!(e.to_string().contains("degree 4"));
        assert!(e.to_string().contains("lambda = 6"));
        let e = RouteError::MissingPattern { degree: 3, key: 0xabc };
        assert!(e.to_string().contains("0xabc"));
        let e = RouteError::UnclassifiableDegree { degree: 17 };
        assert!(e.to_string().contains("17"));
        let e = RouteError::Panicked { payload: "index out of bounds".to_string() };
        assert!(e.to_string().contains("panicked"));
        assert!(e.to_string().contains("index out of bounds"));
        let mut trace = DegradationTrace::default();
        trace.push(Rung::Lut, RungOutcome::MissingDegree);
        let e = RouteError::RungsExhausted { degree: 5, trace };
        assert!(e.to_string().contains("degree-5"));
        assert!(e.to_string().contains("lut:missing-degree"));
    }

    #[test]
    fn summary_records_and_totals() {
        let mut s = ProvenanceSummary::default();
        let p = |source| RouteProvenance {
            degree: 3,
            source,
            counters: StageCounters::default(),
            trace: DegradationTrace::default(),
        };
        s.record(&p(RouteSource::CacheHit));
        s.record(&p(RouteSource::CacheHit));
        s.record(&p(RouteSource::ExactLut));
        s.record(&p(RouteSource::LocalSearch));
        s.record(&p(RouteSource::ClosedForm));
        s.record(&p(RouteSource::NumericDw));
        s.record(&p(RouteSource::Baseline));
        s.record(&p(RouteSource::Reused { staleness: 2 }));
        assert_eq!(s.total(), 8);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.numeric_dw, 1);
        assert_eq!(s.baseline, 1);
        assert_eq!(s.reused, 1);
        let line = s.to_string();
        assert!(line.contains("cache-hit 2"));
        assert!(line.contains("exact-lut 1"));
        assert!(line.contains("numeric-dw 1"));
        assert!(line.contains("baseline 1"));
        assert!(line.contains("reused 1"));
    }
}
