//! Shared harness for the experiment binaries.
//!
//! One binary per paper table/figure lives in `src/bin/`; this library
//! provides the common machinery: running every routing method on a net,
//! normalizing Pareto curves by `w(FLUTE)` and `d(CL)` (the paper's
//! Fig. 7 convention), averaging curves across nets, and rendering
//! plain-text tables that mirror the paper's layout.
//!
//! Experiment sizes scale with the `PATLABOR_SCALE` environment variable
//! (a positive float, default 1.0): the defaults finish in minutes on a
//! laptop; the paper-scale runs need a beefier budget.

pub mod scaling;

use std::time::{Duration, Instant};

use patlabor::{Cost, Net, ParetoSet, PatLabor, RoutingTree};
use patlabor_baselines::{pd, salt, weighted_sum};

/// Experiment scale factor from `PATLABOR_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("PATLABOR_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

/// `count` scaled by [`scale`], at least `min`.
pub fn scaled(count: usize, min: usize) -> usize {
    ((count as f64 * scale()) as usize).max(min)
}

/// The routing methods compared throughout the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// PatLabor (this work): exact tables below λ, local search above.
    PatLabor,
    /// SALT with the default ε sweep.
    Salt,
    /// Weighted-sum scalarization (YSD substitute) with the default β
    /// sweep.
    Ysd,
    /// Prim–Dijkstra (PD-II) with the default α sweep.
    Pd,
}

impl Method {
    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            Method::PatLabor => "PatLabor",
            Method::Salt => "SALT",
            Method::Ysd => "YSD*",
            Method::Pd => "PD-II",
        }
    }

    /// All methods in display order.
    pub const ALL: [Method; 4] = [Method::PatLabor, Method::Salt, Method::Ysd, Method::Pd];
}

/// A method's output on one net, with wall time.
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// Which method ran.
    pub method: Method,
    /// The produced Pareto set.
    pub set: ParetoSet<RoutingTree>,
    /// Wall-clock time for this net.
    pub elapsed: Duration,
}

/// Runs one method on one net.
pub fn run_method(method: Method, net: &Net, router: &PatLabor) -> MethodRun {
    let start = Instant::now();
    let set = match method {
        Method::PatLabor => router.route_frontier(net),
        Method::Salt => salt::salt_pareto(net, &salt::DEFAULT_EPSILONS),
        Method::Ysd => weighted_sum::weighted_sum_pareto(net, &weighted_sum::DEFAULT_BETAS),
        Method::Pd => pd::pd_pareto(net, &pd::DEFAULT_ALPHAS),
    };
    MethodRun {
        method,
        set,
        elapsed: start.elapsed(),
    }
}

/// The Fig. 7 normalization constants of a net: `w(FLUTE)` (RSMT
/// wirelength from the FLUTE substitute) and `d(CL)` (arborescence delay,
/// which equals the delay lower bound).
pub fn normalizers(net: &Net) -> (f64, f64) {
    let w = patlabor_baselines::rsmt::rsmt_tree(net).wirelength() as f64;
    let d = net.delay_lower_bound() as f64;
    (w.max(1.0), d.max(1.0))
}

/// An averaged, normalized Pareto curve: for each normalized-wirelength
/// budget on `grid`, the mean (over nets) of the best normalized delay
/// achievable within the budget.
///
/// Curves are staircase-interpolated; nets whose curve has no point within
/// a budget contribute their leftmost point's delay (clamping, so every
/// net contributes to every column and averages stay comparable).
pub fn average_curve(
    grid: &[f64],
    per_net: &[(ParetoSet<RoutingTree>, (f64, f64))],
) -> Vec<f64> {
    let mut sums = vec![0.0f64; grid.len()];
    for (set, (wn, dn)) in per_net {
        let points: Vec<(f64, f64)> = set
            .costs()
            .map(|c| (c.wirelength as f64 / wn, c.delay as f64 / dn))
            .collect();
        for (i, &budget) in grid.iter().enumerate() {
            let best = points
                .iter()
                .filter(|(w, _)| *w <= budget + 1e-9)
                .map(|(_, d)| *d)
                .fold(f64::INFINITY, f64::min);
            let value = if best.is_finite() {
                best
            } else {
                // Nothing within budget: contribute the cheapest point's
                // delay (the leftmost frontier point — the delay the
                // method would deliver at its smallest achievable budget).
                points.first().map(|&(_, d)| d).unwrap_or(1.0)
            };
            sums[i] += value;
        }
    }
    let n = per_net.len().max(1) as f64;
    sums.into_iter().map(|s| s / n).collect()
}

/// The normalized-wirelength grid used for Fig. 7 style curves.
pub fn default_grid() -> Vec<f64> {
    (0..=10).map(|i| 1.0 + i as f64 * 0.05).collect()
}

/// One method's per-net results: each routed frontier paired with the
/// net's `(wirelength, delay)` normalizers (see [`normalizers`]).
pub type MethodResults = Vec<(ParetoSet<RoutingTree>, (f64, f64))>;

/// Clamp-free quality summary: for each method, the average (over nets)
/// approximation factor of its set against the per-net **combined
/// frontier** (the Pareto union of every method's output) — `1.0` means
/// the method matches or dominates everything anyone found.
pub fn approximation_summary(per_method: &[MethodResults]) -> Vec<f64> {
    let nets = per_method[0].len();
    let mut sums = vec![0.0f64; per_method.len()];
    for net_idx in 0..nets {
        // Combined reference frontier for this net.
        let mut reference: ParetoSet<()> = ParetoSet::new();
        for m in per_method {
            for c in m[net_idx].0.costs() {
                reference.insert(c, ());
            }
        }
        for (mi, m) in per_method.iter().enumerate() {
            let produced = cost_set(&m[net_idx].0);
            sums[mi] +=
                patlabor_pareto::metrics::approximation_factor(&produced, &reference);
        }
    }
    sums.into_iter().map(|s| s / nets.max(1) as f64).collect()
}

/// Renders a plain-text table: header row + aligned columns.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Least-squares fit `y = a·x + b`; returns `(a, b)`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return (0.0, sy / n.max(1.0));
    }
    let a = (n * sxy - sx * sy) / denom;
    let b = (sy - a * sx) / n;
    (a, b)
}

/// Exact frontier of a small net (degree ≤ λ of `router`'s table or ≤ 13
/// via the DP).
pub fn exact_frontier(net: &Net, router: &PatLabor) -> ParetoSet<RoutingTree> {
    if router.is_exact_for(net.degree()) {
        router.route_frontier(net)
    } else {
        patlabor_dw::numeric::pareto_frontier(net, &patlabor_dw::DwConfig::default())
    }
}

/// Pure-cost view of a tree set (drops the witnesses).
pub fn cost_set(set: &ParetoSet<RoutingTree>) -> ParetoSet<()> {
    set.costs().map(|c| (c, ())).collect()
}

/// Paper-vs-measured footer line used by every binary.
pub fn paper_note(line: &str) {
    println!("\n[paper] {line}");
}

/// Convenience: format a `Cost` compactly.
pub fn fmt_cost(c: Cost) -> String {
    format!("({}, {})", c.wirelength, c.delay)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_a_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 2.0).abs() < 1e-9 && (b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_input() {
        let (a, b) = linear_fit(&[2.0, 2.0], &[5.0, 7.0]);
        assert_eq!(a, 0.0);
        assert_eq!(b, 6.0);
    }

    #[test]
    fn render_table_aligns_columns() {
        let s = render_table(
            &["x", "value"],
            &[
                vec!["1".into(), "10".into()],
                vec!["200".into(), "3".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("value"));
        assert!(lines[2].ends_with("10"));
    }

    #[test]
    fn average_curve_staircase_and_clamp() {
        use patlabor_pareto::ParetoSet;
        use patlabor_tree::RoutingTree;
        let net = Net::new(vec![
            patlabor::Point::new(0, 0),
            patlabor::Point::new(10, 0),
        ])
        .unwrap();
        let tree = RoutingTree::direct(&net);
        // One net, frontier {(10,30), (20,20)}, normalizers (10, 10).
        let set: ParetoSet<RoutingTree> = [
            (Cost::new(10, 30), tree.clone()),
            (Cost::new(20, 20), tree),
        ]
        .into_iter()
        .collect();
        let per_net = vec![(set, (10.0, 10.0))];
        let grid = [0.5, 1.0, 1.5, 2.0];
        let avg = average_curve(&grid, &per_net);
        // Budget 0.5: nothing within → clamp to leftmost point's delay 3.0.
        assert_eq!(avg, vec![3.0, 3.0, 3.0, 2.0]);
    }

    #[test]
    fn scaled_respects_minimum() {
        assert!(scaled(100, 10) >= 10);
    }

    #[test]
    fn methods_have_stable_names() {
        let names: Vec<&str> = Method::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["PatLabor", "SALT", "YSD*", "PD-II"]);
    }
}

/// The mixed parallel-serving workload shared by the throughput bench
/// (`BENCH_PR1.json`) and the scaling bench (`BENCH_PR7.json`).
///
/// Repeated cells and macros give real placements many congruent nets:
/// identical relative pin geometry at different offsets and
/// orientations. A third of the workload instantiates a small pool of
/// master patterns that way (cache hits after the first encounter); the
/// rest are fresh random nets of mixed degree 3–12 (mostly misses, and
/// above λ the local-search path, which bypasses the cache).
pub fn mixed_workload(count: usize, seed: u64) -> Vec<Net> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let masters: Vec<Net> = (0..64)
        .map(|_| {
            let degree = rng.gen_range(3..=5usize);
            patlabor_netgen::uniform_net(&mut rng, degree, 64)
        })
        .collect();
    (0..count)
        .map(|i| {
            if i % 3 == 0 {
                let master = &masters[rng.gen_range(0..masters.len())];
                let dx = rng.gen_range(0..100_000i64);
                let dy = rng.gen_range(0..100_000i64);
                let swap = rng.gen_bool(0.5);
                let flip_x = rng.gen_bool(0.5);
                let flip_y = rng.gen_bool(0.5);
                master.map_points(|p| {
                    let (mut x, mut y) = (p.x, p.y);
                    if swap {
                        std::mem::swap(&mut x, &mut y);
                    }
                    if flip_x {
                        x = -x;
                    }
                    if flip_y {
                        y = -y;
                    }
                    patlabor::Point::new(x + dx, y + dy)
                })
            } else {
                let degree = rng.gen_range(3..=12);
                let span = if i % 3 == 1 { 24 } else { 10_000 };
                patlabor_netgen::uniform_net(&mut rng, degree, span)
            }
        })
        .collect()
}

/// Per-degree statistics shared by Tables III and IV.
#[derive(Debug, Clone, Default)]
pub struct SmallDegreeStats {
    /// Nets evaluated at this degree.
    pub nets: usize,
    /// True frontier solutions across all nets.
    pub frontier_total: usize,
    /// Per method: nets on which the method found **no** frontier point.
    pub non_optimal: [usize; 4],
    /// Per method: frontier solutions found (exact cost matches).
    pub found: [usize; 4],
    /// Per method: accumulated wall time.
    pub time: [Duration; 4],
}

/// Runs the small-degree comparison once; Tables III and IV and Fig. 7(a)
/// are different projections of this data.
///
/// Also returns, per degree, the per-net curves (normalized) restricted to
/// nets where SALT or YSD was non-optimal — the Fig. 7(a) averaging rule.
#[allow(clippy::type_complexity)]
pub fn small_degree_comparison(
    router: &PatLabor,
    degrees: std::ops::RangeInclusive<usize>,
    nets_per_degree: usize,
    seed: u64,
) -> (
    Vec<(usize, SmallDegreeStats)>,
    Vec<[Vec<(ParetoSet<RoutingTree>, (f64, f64))>; 4]>,
) {
    use patlabor_pareto::metrics::{found_on_frontier, misses_frontier};
    let mut all_stats = Vec::new();
    let mut all_curves = Vec::new();
    let mut gen_seed = seed;
    for degree in degrees {
        let mut stats = SmallDegreeStats {
            nets: nets_per_degree,
            ..SmallDegreeStats::default()
        };
        let mut curves: [Vec<(ParetoSet<RoutingTree>, (f64, f64))>; 4] = Default::default();
        for net_idx in 0..nets_per_degree {
            gen_seed = gen_seed.wrapping_mul(6364136223846793005).wrapping_add(net_idx as u64 + 1);
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(gen_seed);
            let net = patlabor_netgen::clustered_net(&mut rng, degree, 10_000, 1 + degree / 12);
            let frontier = exact_frontier(&net, router);
            stats.frontier_total += frontier.len();
            let norms = normalizers(&net);
            let mut runs = Vec::new();
            for (mi, method) in Method::ALL.iter().enumerate() {
                let run = run_method(*method, &net, router);
                stats.time[mi] += run.elapsed;
                if misses_frontier(&run.set, &frontier) {
                    stats.non_optimal[mi] += 1;
                }
                stats.found[mi] += found_on_frontier(&run.set, &frontier);
                runs.push(run);
            }
            // Fig. 7(a) averages only over nets where SALT or YSD missed.
            let salt_missed = misses_frontier(&runs[1].set, &frontier)
                || found_on_frontier(&runs[1].set, &frontier) < frontier.len();
            let ysd_missed = misses_frontier(&runs[2].set, &frontier)
                || found_on_frontier(&runs[2].set, &frontier) < frontier.len();
            if salt_missed || ysd_missed {
                for (mi, run) in runs.into_iter().enumerate() {
                    curves[mi].push((run.set, norms));
                }
            }
        }
        all_stats.push((degree, stats));
        all_curves.push(curves);
    }
    (all_stats, all_curves)
}
