//! The scaling-curve bench: does `route_batch` actually scale, and does
//! the frontier cache pay under real parallelism? Writes `BENCH_PR7.json`
//! at the repository root in the shared `scaling-v1` schema
//! ([`patlabor_bench::scaling`]).
//!
//! What it measures, per thread count 1→N (N = hardware threads), cache
//! on and off:
//! * throughput and speedup against the serial cache-off baseline;
//! * per-worker utilization (busy-ns / elapsed) and its minimum — the
//!   load-balance floor the work-stealing deques are supposed to hold up;
//! * steal counts and lost steal races;
//! * per-shard cache lock contention (failed try-locks).
//!
//! Thread counts above the hardware count are measured only as
//! *oversubscription observations*: they land in a structurally separate
//! JSON array and are never part of the scaling curve (on a single-core
//! container the whole curve is one point — that is the honest answer).
//!
//! A chunk-size sweep at max parallelism records how the steal rate and
//! throughput respond to chunk granularity; the auto heuristic's default
//! is judged against that sweep. Every parallel run is also checked
//! bit-identical to the serial ordering before its numbers are reported.
//!
//! CI gate: set `PATLABOR_MIN_SPEEDUP` (e.g. `3.0`) to make the bench
//! exit nonzero when the cache-off speedup at `PATLABOR_SPEEDUP_THREADS`
//! (default 4) falls below the floor. The gate only arms when the
//! machine has at least that many hardware threads — a 1-core runner
//! cannot measure scaling and must not pretend to.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use patlabor::{BatchConfig, CacheConfig, Net, ParetoSet, PatLabor, RouterConfig, RoutingTree};
use patlabor_bench::scaling::ScalingRun;

const SEED: u64 = 0x5ca1_ab1e;

struct Measured {
    run: ScalingRun,
    frontiers: Vec<Option<ParetoSet<RoutingTree>>>,
}

fn router_for(table: &patlabor::LookupTable, cache: bool, chunk: Option<usize>) -> PatLabor {
    let config = RouterConfig {
        batch: BatchConfig { chunk_size: chunk },
        ..RouterConfig::default()
    };
    PatLabor::with_table_and_config(table.clone(), config).with_cache(if cache {
        CacheConfig::default()
    } else {
        CacheConfig::disabled()
    })
}

fn frontiers(results: Vec<patlabor::RouteResult>) -> Vec<Option<ParetoSet<RoutingTree>>> {
    results
        .into_iter()
        .map(|r| r.ok().map(|o| o.frontier))
        .collect()
}

/// One timed run: fresh router (cold cache), full telemetry.
fn measure(
    table: &patlabor::LookupTable,
    nets: &[Net],
    threads: usize,
    cache: bool,
    chunk: Option<usize>,
    serial_nps: f64,
) -> Measured {
    let router = router_for(table, cache, chunk);
    let start = Instant::now();
    let (results, stats) = router.route_batch_with_stats(nets, threads);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(results.len(), nets.len());
    let nets_per_sec = nets.len() as f64 / secs;
    let (contended_reads, contended_writes) = router
        .cache_stats()
        .map_or((0, 0), |s| (s.contended_reads, s.contended_writes));
    Measured {
        run: ScalingRun {
            threads,
            cache,
            nets_per_sec,
            cache_hit_rate: router.cache_stats().map_or(0.0, |s| s.hit_rate()),
            speedup_vs_serial: if serial_nps > 0.0 { nets_per_sec / serial_nps } else { 0.0 },
            utilization: Some(stats.utilization()),
            min_worker_utilization: Some(stats.min_worker_utilization()),
            steals: Some(stats.total_steals()),
            failed_steals: Some(stats.total_failed_steals()),
            contended_reads: Some(contended_reads),
            contended_writes: Some(contended_writes),
        },
        frontiers: frontiers(results),
    }
}

fn main() {
    let count = patlabor_bench::scaled(20_000, 400);
    let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!("generating {count} nets (seed {SEED:#x}), hardware threads = {hardware} ...");
    let nets = patlabor_bench::mixed_workload(count, SEED);
    let table = patlabor_lut::LutBuilder::new(5).build();

    // Untimed warmup, then the serial cache-off baseline every speedup
    // is measured against.
    eprintln!("warmup ...");
    let serial = measure(&table, &nets, 1, false, None, 0.0);
    eprintln!("serial baseline ...");
    let serial = {
        let m = measure(&table, &nets, 1, false, None, 0.0);
        // Keep the faster of the two serial passes as reference
        // frontiers are identical either way.
        Measured {
            run: ScalingRun {
                speedup_vs_serial: 1.0,
                ..if m.run.nets_per_sec > serial.run.nets_per_sec {
                    m.run.clone()
                } else {
                    serial.run.clone()
                }
            },
            frontiers: m.frontiers,
        }
    };
    let serial_nps = serial.run.nets_per_sec;

    // The scaling sweep: every thread count the machine can genuinely
    // run in parallel, plus fixed oversubscription observations.
    let mut sweep: Vec<usize> = (1..=hardware).collect();
    for extra in [2, 4, 2 * hardware] {
        if extra > hardware && !sweep.contains(&extra) {
            sweep.push(extra);
        }
    }

    let mut runs: Vec<ScalingRun> = Vec::new();
    let mut deterministic = true;
    for cache in [false, true] {
        for &threads in &sweep {
            eprintln!("threads = {threads}, cache = {cache} ...");
            let m = measure(&table, &nets, threads, cache, None, serial_nps);
            if m.frontiers != serial.frontiers {
                deterministic = false;
                eprintln!("ERROR: threads = {threads}, cache = {cache} diverged from serial");
            }
            runs.push(m.run);
        }
    }

    // Chunk-granularity sweep at max parallelism, cache off: how the
    // steal rate and throughput respond to chunk size, and where the
    // auto heuristic lands. Grounds BatchConfig's measured default.
    let auto = BatchConfig::default().auto_chunk(nets.len(), hardware);
    eprintln!("chunk sweep at {hardware} thread(s) (auto = {auto}) ...");
    let mut chunk_rows = Vec::new();
    for chunk in [1usize, 4, 16, 64, 256] {
        let m = measure(&table, &nets, hardware, false, Some(chunk), serial_nps);
        if m.frontiers != serial.frontiers {
            deterministic = false;
            eprintln!("ERROR: chunk = {chunk} diverged from serial");
        }
        let steal_rate = m.run.steals.unwrap_or(0) as f64 / (nets.len() / chunk).max(1) as f64;
        chunk_rows.push((chunk, m.run.nets_per_sec, steal_rate, chunk == auto));
    }

    // The parallel cache verdict, judged at the widest honest thread
    // count: does routing with the cache beat routing without it?
    let widest = hardware;
    let at = |cache: bool| {
        runs.iter()
            .find(|r| r.threads == widest && r.cache == cache)
            .expect("swept")
    };
    let (off, on) = (at(false), at(true));
    let cache_ratio = on.nets_per_sec / off.nets_per_sec;
    let cache_pays = cache_ratio > 1.0;

    println!(
        "{}",
        patlabor_bench::render_table(
            &["threads", "cache", "nets/s", "speedup", "util", "min util", "steals", "contention"],
            &runs
                .iter()
                .map(|r| {
                    vec![
                        format!(
                            "{}{}",
                            r.threads,
                            if r.oversubscribed(hardware) { "*" } else { "" }
                        ),
                        if r.cache { "on" } else { "off" }.to_string(),
                        format!("{:.0}", r.nets_per_sec),
                        format!("{:.2}x", r.speedup_vs_serial),
                        format!("{:.2}", r.utilization.unwrap_or(0.0)),
                        format!("{:.2}", r.min_worker_utilization.unwrap_or(0.0)),
                        r.steals.unwrap_or(0).to_string(),
                        format!(
                            "{}r/{}w",
                            r.contended_reads.unwrap_or(0),
                            r.contended_writes.unwrap_or(0)
                        ),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    );
    if sweep.iter().any(|&t| t > hardware) {
        println!("* oversubscribed (threads > {hardware} hardware threads): not scaling data");
    }
    println!(
        "cache verdict at {widest} thread(s): {} ({:.2}x vs cache-off, hit rate {:.3})",
        if cache_pays { "pays" } else { "costs" },
        cache_ratio,
        on.cache_hit_rate
    );
    println!("deterministic vs serial: {deterministic}");

    let mut extra = String::new();
    let _ = writeln!(
        extra,
        "  \"headline\": {{\"max_honest_threads\": {widest}, \
         \"speedup_cache_off\": {:.4}, \"cache_on_vs_off\": {:.4}, \
         \"cache_pays\": {cache_pays}, \"cache_hit_rate\": {:.4}}},",
        off.speedup_vs_serial, cache_ratio, on.cache_hit_rate
    );
    let _ = writeln!(extra, "  \"deterministic_vs_serial\": {deterministic},");
    let _ = writeln!(extra, "  \"chunk_sweep\": [");
    for (i, (chunk, nps, steal_rate, is_auto)) in chunk_rows.iter().enumerate() {
        let comma = if i + 1 < chunk_rows.len() { "," } else { "" };
        let _ = writeln!(
            extra,
            "    {{\"chunk\": {chunk}, \"nets_per_sec\": {nps:.2}, \
             \"steals_per_chunk\": {steal_rate:.4}, \"auto_default\": {is_auto}}}{comma}"
        );
    }
    let _ = writeln!(extra, "  ],");

    let json = patlabor_bench::scaling::render_report(
        &patlabor_bench::scaling::ReportHeader {
            bench: "batch_scaling_curve",
            nets: count,
            seed: SEED,
            hardware_threads: hardware,
            serial_nets_per_sec: serial_nps,
        },
        &runs,
        &extra,
        "scaling_runs is the curve (threads <= hardware_threads); oversubscribed_runs \
         measure scheduler time-slicing and are never scaling data. The cache verdict \
         compares cache-on vs cache-off at the widest honest thread count on this \
         machine. chunk_sweep grounds BatchConfig's auto chunk heuristic.",
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR7.json");
    std::fs::write(&path, &json).expect("write BENCH_PR7.json");
    eprintln!("wrote {}", path.display());

    if !deterministic {
        eprintln!("FAIL: parallel routing diverged from serial");
        std::process::exit(1);
    }

    // The CI speedup floor. Armed only when the floor is measurable:
    // a machine with fewer hardware threads than the gate's thread
    // count has no scaling curve to gate.
    if let Ok(floor) = std::env::var("PATLABOR_MIN_SPEEDUP") {
        let floor: f64 = floor.parse().expect("PATLABOR_MIN_SPEEDUP must be a float");
        let gate_threads: usize = std::env::var("PATLABOR_SPEEDUP_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(4);
        if hardware >= gate_threads {
            let measured = runs
                .iter()
                .find(|r| r.threads == gate_threads && !r.cache)
                .map(|r| r.speedup_vs_serial)
                .expect("gate thread count is inside the sweep");
            println!(
                "speedup gate: {measured:.2}x at {gate_threads} threads (floor {floor:.2}x)"
            );
            if measured < floor {
                eprintln!(
                    "FAIL: speedup {measured:.2}x at {gate_threads} threads \
                     is below the {floor:.2}x floor"
                );
                std::process::exit(1);
            }
        } else {
            println!(
                "speedup gate skipped: {hardware} hardware thread(s) < {gate_threads} \
                 gate threads (cannot measure scaling here)"
            );
        }
    }

    patlabor_bench::paper_note(
        "the paper evaluates all methods multithreaded (footnote 4); this bench \
         measures whether the batch driver's work-stealing scales on the machine at hand",
    );
}
