//! Table II: lookup-table statistics per degree.
//!
//! `#Index` (stored canonical patterns), `#Topo` (average potentially
//! optimal topologies per pattern), serialized size, generation wall time,
//! and generation throughput (topologies/second — the basis of the
//! paper's "441× faster than FLUTE" comparison).
//!
//! Default λ = 6 finishes in seconds; set `PATLABOR_TABLE2_LAMBDA=7` (or
//! 8) for the bigger offline runs.

use std::time::Instant;

use patlabor::LutBuilder;
use patlabor_bench::{paper_note, render_table};

fn main() {
    let lambda: u8 = std::env::var("PATLABOR_TABLE2_LAMBDA")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|l| (3..=9).contains(l))
        .unwrap_or(6);
    println!("Table II — lookup-table statistics (lambda = {lambda})\n");

    let mut rows = Vec::new();
    let mut total_topos = 0usize;
    let mut total_bytes = 0usize;
    let mut total_secs = 0.0f64;
    for degree in 4..=lambda {
        let start = Instant::now();
        let table = LutBuilder::new(degree).build();
        let secs = start.elapsed().as_secs_f64();
        let stats = table
            .stats()
            .into_iter()
            .find(|s| s.degree == degree)
            .expect("degree was generated");
        let mut bytes = Vec::new();
        table.write_to(&mut bytes).expect("in-memory write");
        // Subtract the sub-degree payload so sizes are per degree.
        let sub = if degree > 4 {
            let prev = LutBuilder::new(degree - 1).build();
            let mut b = Vec::new();
            prev.write_to(&mut b).expect("in-memory write");
            b.len()
        } else {
            0
        };
        let degree_bytes = bytes.len().saturating_sub(sub);
        total_topos += stats.total_topologies;
        total_bytes += degree_bytes;
        total_secs += secs;
        rows.push(vec![
            degree.to_string(),
            stats.num_patterns.to_string(),
            format!("{:.2}", stats.avg_topologies),
            format!("{:.1} KiB", degree_bytes as f64 / 1024.0),
            format!("{secs:.2}s"),
            format!("{:.0}/s", stats.total_topologies as f64 / secs.max(1e-9)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["degree", "#Index", "#Topo", "size", "gen time", "throughput"],
            &rows
        )
    );
    println!(
        "total: {total_topos} topologies, {:.1} KiB, {total_secs:.2}s",
        total_bytes as f64 / 1024.0
    );
    paper_note(
        "paper Table II (lambda = 9, 16 cores): #Index 24/220/1008/5824/46880/429516 for \
         degrees 4..9, avg #Topo 1.67..378, 246 MB total, 4.76 h parallel. Our #Index is \
         smaller (full-D4 orbit canonicalization: 16/89/579/4549 for 4..7) and #Topo \
         differs because we store deduplicated topology sets; the shape to check is \
         super-exponential growth of #Index and #Topo with degree, and throughput far \
         above FLUTE's ~2.1 topologies/s (450k topologies / 58.2 h).",
    );
}
