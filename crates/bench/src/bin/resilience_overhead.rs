//! Checkpoint-overhead guard: budgeted vs unbudgeted routing on the
//! BENCH_PR1 workload, written to `BENCH_PR5.json` at the repository
//! root.
//!
//! Arming a per-net deadline threads cooperative cancellation
//! checkpoints through the DW and local-search inner loops. The deadline
//! here is one hour — the checkpoints always run and never fire — so the
//! measured gap is pure checkpoint cost, which this guard holds below
//! 2%. Runs alternate between the two configurations and each takes the
//! minimum of several repetitions, so one scheduler hiccup cannot fake a
//! regression on a shared machine.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use patlabor::{Net, PatLabor, ResilienceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The BENCH_PR1 workload seed (`src/bin/throughput.rs`).
const SEED: u64 = 0x7412_0be7;
const REPS: usize = 5;
const OVERHEAD_LIMIT_PCT: f64 = 2.0;

fn workload(count: usize) -> Vec<Net> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let masters: Vec<Net> = (0..64)
        .map(|_| {
            let degree = rng.gen_range(3..=5usize);
            patlabor_netgen::uniform_net(&mut rng, degree, 64)
        })
        .collect();
    (0..count)
        .map(|i| {
            if i % 3 == 0 {
                let master = &masters[rng.gen_range(0..masters.len())];
                let dx = rng.gen_range(0..100_000i64);
                let dy = rng.gen_range(0..100_000i64);
                let swap = rng.gen_bool(0.5);
                let flip_x = rng.gen_bool(0.5);
                let flip_y = rng.gen_bool(0.5);
                master.map_points(|p| {
                    let (mut x, mut y) = (p.x, p.y);
                    if swap {
                        std::mem::swap(&mut x, &mut y);
                    }
                    if flip_x {
                        x = -x;
                    }
                    if flip_y {
                        y = -y;
                    }
                    patlabor::Point::new(x + dx, y + dy)
                })
            } else {
                let degree = rng.gen_range(3..=12);
                let span = if i % 3 == 1 { 24 } else { 10_000 };
                patlabor_netgen::uniform_net(&mut rng, degree, span)
            }
        })
        .collect()
}

fn router(table: &patlabor::LookupTable, budgeted: bool) -> PatLabor {
    PatLabor::with_table(table.clone()).with_resilience(ResilienceConfig {
        deadline: budgeted.then(|| Duration::from_secs(3600)),
        ..ResilienceConfig::default()
    })
}

fn measure(table: &patlabor::LookupTable, nets: &[Net], budgeted: bool) -> f64 {
    // A fresh router per run: cold cache, identical for both configs.
    let r = router(table, budgeted);
    let start = Instant::now();
    let results = r.route_batch(nets, 1);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(results.len(), nets.len());
    assert!(results.iter().all(|r| r.is_ok()), "a generous deadline never fails a net");
    std::hint::black_box(&results);
    secs
}

fn main() {
    let count = patlabor_bench::scaled(20_000, 2_000);
    eprintln!("generating {count} nets (BENCH_PR1 workload, seed {SEED:#x}) ...");
    let nets = workload(count);
    let table = patlabor_lut::LutBuilder::new(5).build();

    eprintln!("warmup ...");
    measure(&table, &nets, false);
    measure(&table, &nets, true);

    let mut unbudgeted = f64::INFINITY;
    let mut budgeted = f64::INFINITY;
    for rep in 0..REPS {
        eprintln!("rep {} / {REPS} ...", rep + 1);
        unbudgeted = unbudgeted.min(measure(&table, &nets, false));
        budgeted = budgeted.min(measure(&table, &nets, true));
    }

    let overhead_pct = (budgeted - unbudgeted) / unbudgeted * 100.0;
    let pass = overhead_pct < OVERHEAD_LIMIT_PCT;
    println!(
        "unbudgeted: {:.0} nets/s   budgeted (1h deadline): {:.0} nets/s",
        nets.len() as f64 / unbudgeted,
        nets.len() as f64 / budgeted
    );
    println!(
        "checkpoint overhead: {overhead_pct:+.2}% (limit {OVERHEAD_LIMIT_PCT}%) — {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"resilience_checkpoint_overhead\",");
    let _ = writeln!(json, "  \"workload\": \"BENCH_PR1 (batch_routing_throughput)\",");
    let _ = writeln!(json, "  \"nets\": {count},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"unbudgeted_secs\": {unbudgeted:.4},");
    let _ = writeln!(json, "  \"budgeted_secs\": {budgeted:.4},");
    let _ = writeln!(json, "  \"overhead_pct\": {overhead_pct:.3},");
    let _ = writeln!(json, "  \"limit_pct\": {OVERHEAD_LIMIT_PCT},");
    let _ = writeln!(json, "  \"pass\": {pass},");
    let _ = writeln!(
        json,
        "  \"notes\": \"min-of-{REPS} alternating runs, serial driver, 1h deadline so \
         cancellation checkpoints run but never fire; the gap is pure checkpoint cost\""
    );
    let _ = writeln!(json, "}}");

    // crates/bench → repository root.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR5.json");
    std::fs::write(&path, &json).expect("write BENCH_PR5.json");
    eprintln!("wrote {}", path.display());
    if !pass {
        std::process::exit(1);
    }
}
