//! Table III: ratio of non-optimal nets for small degrees.
//!
//! A method is *non-optimal* on a net when it finds no solution on the
//! true Pareto frontier. PatLabor is 0% by construction (lookup tables);
//! the parameterized baselines miss increasingly often as degree grows.

use patlabor::{PatLabor, RouterConfig};
use patlabor_bench::{paper_note, render_table, scaled, small_degree_comparison, Method};

fn main() {
    let nets_per_degree = scaled(150, 20);
    let lambda: u8 = std::env::var("PATLABOR_SMALL_LAMBDA")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|l| (4..=7).contains(l))
        .unwrap_or(6);
    println!(
        "Table III — ratio of non-optimal nets, degrees 4..={lambda} \
         ({nets_per_degree} nets/degree)\n"
    );

    let router = PatLabor::with_config(RouterConfig {
        lambda,
        ..RouterConfig::default()
    });
    let (stats, _) =
        small_degree_comparison(&router, 4..=lambda as usize, nets_per_degree, 0x7ab1e3);

    let mut rows = Vec::new();
    let mut totals = (0usize, [0usize; 4]);
    for (degree, s) in &stats {
        totals.0 += s.nets;
        let mut row = vec![degree.to_string(), s.nets.to_string()];
        for (mi, _) in Method::ALL.iter().enumerate() {
            totals.1[mi] += s.non_optimal[mi];
            row.push(format!(
                "{:.1}%",
                100.0 * s.non_optimal[mi] as f64 / s.nets as f64
            ));
        }
        rows.push(row);
    }
    let mut total_row = vec!["Total".to_string(), totals.0.to_string()];
    for miss in totals.1 {
        total_row.push(format!("{:.1}%", 100.0 * miss as f64 / totals.0 as f64));
    }
    rows.push(total_row);

    let headers: Vec<&str> = ["n", "#Net"]
        .into_iter()
        .chain(Method::ALL.iter().map(|m| m.name()))
        .collect();
    println!("{}", render_table(&headers, &rows));
    paper_note(
        "paper Table III (904,915 ICCAD-15 nets): PatLabor 0.0% at every degree; \
         YSD 0.0/0.3/7.8/23.3/36.0/49.5% and SALT 0.0/0.9/11.9/24.3/34.7/45.4% for \
         degrees 4..9. Expect PatLabor exactly 0%, baselines increasing with degree, \
         degree 4 near 0%.",
    );
}
