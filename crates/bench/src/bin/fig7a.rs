//! Figure 7(a): averaged Pareto curves and runtimes on small-degree nets.
//!
//! Curves are normalized by `w(FLUTE)` and `d(CL)` and, following the
//! paper, averaged only over nets where SALT or YSD is non-optimal.

use patlabor::{PatLabor, RouterConfig};
use patlabor_bench::{
    average_curve, default_grid, paper_note, render_table, scaled, small_degree_comparison,
    Method,
};

fn main() {
    let nets_per_degree = scaled(120, 20);
    let lambda: u8 = std::env::var("PATLABOR_SMALL_LAMBDA")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|l| (4..=7).contains(l))
        .unwrap_or(6);
    println!(
        "Fig 7(a) — averaged Pareto curves, small degrees 4..={lambda} \
         ({nets_per_degree} nets/degree, non-optimal subset)\n"
    );

    let router = PatLabor::with_config(RouterConfig {
        lambda,
        ..RouterConfig::default()
    });
    let (stats, curves) =
        small_degree_comparison(&router, 4..=lambda as usize, nets_per_degree, 0xf17a);

    // Pool the non-optimal-net curves across degrees.
    let mut pooled: [Vec<_>; 4] = Default::default();
    for per_degree in curves {
        for (mi, v) in per_degree.into_iter().enumerate() {
            pooled[mi].extend(v);
        }
    }
    let sample_count = pooled[0].len();
    println!("nets in the averaged subset: {sample_count}\n");

    let grid = default_grid();
    let mut rows = Vec::new();
    let averaged: Vec<Vec<f64>> = pooled.iter().map(|p| average_curve(&grid, p)).collect();
    for (gi, g) in grid.iter().enumerate() {
        let mut row = vec![format!("{g:.2}")];
        for avg in &averaged {
            row.push(format!("{:.4}", avg[gi]));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = ["w/w(FLUTE)"]
        .into_iter()
        .chain(Method::ALL.iter().map(|m| m.name()))
        .collect();
    println!("{}", render_table(&headers, &rows));

    println!("\nclamp-free quality (avg approximation factor vs combined frontier; 1.0 = best):");
    let factors = patlabor_bench::approximation_summary(&pooled);
    let mut q_rows = Vec::new();
    for (mi, m) in Method::ALL.iter().enumerate() {
        q_rows.push(vec![m.name().to_string(), format!("{:.4}", factors[mi])]);
    }
    println!("{}", render_table(&["method", "avg factor"], &q_rows));

    println!("\ntotal runtimes:");
    let mut time_rows = Vec::new();
    let mut totals = [0.0f64; 4];
    for (_, s) in &stats {
        for (mi, t) in s.time.iter().enumerate() {
            totals[mi] += t.as_secs_f64();
        }
    }
    for (mi, m) in Method::ALL.iter().enumerate() {
        time_rows.push(vec![m.name().to_string(), format!("{:.3}s", totals[mi])]);
    }
    println!("{}", render_table(&["method", "total time"], &time_rows));
    if totals[1] > 0.0 {
        println!("PatLabor vs SALT speed: {:.2}x", totals[1] / totals[0].max(1e-9));
    }
    paper_note(
        "paper Fig 7(a): PatLabor has the lowest (tightest) curve at every wirelength \
         budget and is ~1.35x faster than SALT thanks to the lookup tables. Expect \
         PatLabor's column to lower-bound the others at every grid point.",
    );
}
