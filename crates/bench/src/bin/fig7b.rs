//! Figure 7(b): averaged Pareto curves and runtimes on large-degree nets
//! (ICCAD-like degrees 10–50).

use patlabor::{PatLabor, RouterConfig};
use patlabor_bench::{
    average_curve, default_grid, normalizers, paper_note, render_table, run_method, scaled,
    Method,
};

fn main() {
    let net_count = scaled(60, 10);
    println!("Fig 7(b) — averaged Pareto curves, large-degree nets ({net_count} nets)\n");

    let router = PatLabor::with_config(RouterConfig {
        lambda: 5,
        ..RouterConfig::default()
    });

    // ICCAD-like large-degree sample: resample until the degree is > 9.
    let suite: Vec<_> = patlabor_netgen::iccad_like_suite(0xf17b, net_count * 12, 50)
        .into_iter()
        .filter(|n| n.degree() > 9)
        .take(net_count)
        .collect();
    println!(
        "degrees: min {}, max {}, count {}\n",
        suite.iter().map(|n| n.degree()).min().unwrap_or(0),
        suite.iter().map(|n| n.degree()).max().unwrap_or(0),
        suite.len()
    );

    let mut pooled: [Vec<_>; 4] = Default::default();
    let mut totals = [0.0f64; 4];
    for net in &suite {
        let norms = normalizers(net);
        for (mi, method) in Method::ALL.iter().enumerate() {
            let run = run_method(*method, net, &router);
            totals[mi] += run.elapsed.as_secs_f64();
            pooled[mi].push((run.set, norms));
        }
    }

    let grid = default_grid();
    let averaged: Vec<Vec<f64>> = pooled.iter().map(|p| average_curve(&grid, p)).collect();
    let mut rows = Vec::new();
    for (gi, g) in grid.iter().enumerate() {
        let mut row = vec![format!("{g:.2}")];
        for avg in &averaged {
            row.push(format!("{:.4}", avg[gi]));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = ["w/w(FLUTE)"]
        .into_iter()
        .chain(Method::ALL.iter().map(|m| m.name()))
        .collect();
    println!("{}", render_table(&headers, &rows));

    println!("\nclamp-free quality (avg approximation factor vs combined frontier; 1.0 = best):");
    let factors = patlabor_bench::approximation_summary(&pooled);
    let mut q_rows = Vec::new();
    for (mi, m) in Method::ALL.iter().enumerate() {
        q_rows.push(vec![m.name().to_string(), format!("{:.4}", factors[mi])]);
    }
    println!("{}", render_table(&["method", "avg factor"], &q_rows));

    println!("\ntotal runtimes:");
    let mut time_rows = Vec::new();
    for (mi, m) in Method::ALL.iter().enumerate() {
        time_rows.push(vec![m.name().to_string(), format!("{:.3}s", totals[mi])]);
    }
    println!("{}", render_table(&["method", "total time"], &time_rows));
    println!(
        "PatLabor/SALT time ratio: {:.2}",
        totals[0] / totals[1].max(1e-9)
    );
    paper_note(
        "paper Fig 7(b): PatLabor again has the tightest curves on large-degree nets \
         but is ~11.6% slower than SALT (Pareto-set combination overhead), while still \
         much faster than YSD. Expect PatLabor at or below the baselines across the \
         grid and a PatLabor/SALT time ratio around or above 1.",
    );
}
