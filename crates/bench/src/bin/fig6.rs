//! Figure 6: maximum Pareto-frontier size per degree, with a linear fit.
//!
//! The paper measures, over the ICCAD-15 nets of each degree `n ≤ 9`, the
//! maximum frontier size, and fits `y = 2.85x − 10.9`. We regenerate the
//! statistic on the ICCAD-like synthetic suite (exact frontiers from the
//! Pareto-DW / lookup tables).

use patlabor::{PatLabor, RouterConfig};
use patlabor_bench::{exact_frontier, linear_fit, paper_note, render_table, scaled};

fn main() {
    let nets_per_degree = scaled(300, 30);
    let max_degree: usize = std::env::var("PATLABOR_FIG6_MAX_DEGREE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    println!("Fig 6 — max Pareto frontier size per degree ({nets_per_degree} nets/degree)\n");

    let router = PatLabor::with_config(RouterConfig {
        lambda: 6,
        ..RouterConfig::default()
    });

    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut rows = Vec::new();
    let mut seed = 0x0f16_6000u64;
    for degree in 4..=max_degree {
        let mut max_size = 0usize;
        let mut total = 0usize;
        for i in 0..nets_per_degree {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64 + 1);
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
            let net =
                patlabor_netgen::clustered_net(&mut rng, degree, 10_000, 1 + degree / 12);
            let f = exact_frontier(&net, &router);
            max_size = max_size.max(f.len());
            total += f.len();
        }
        xs.push(degree as f64);
        ys.push(max_size as f64);
        rows.push(vec![
            degree.to_string(),
            max_size.to_string(),
            format!("{:.2}", total as f64 / nets_per_degree as f64),
        ]);
    }
    println!(
        "{}",
        render_table(&["degree", "max |F|", "avg |F|"], &rows)
    );
    let (a, b) = linear_fit(&xs, &ys);
    println!("linear fit: y = {a:.2}·x + {b:.2}");
    paper_note(
        "paper (ICCAD-15, n<=9): max |F| grows roughly linearly, fit y = 2.85x - 10.9, \
         max |F| = 16 at n = 9. Expect the same shape: linear growth, single-digit \
         slope, max far below the exponential worst case.",
    );
}
