//! The serving-path loadgen: drives a `patlabor serve` daemon with a
//! fixed-seed workload and writes `BENCH_PR8.json` in the shared
//! `scaling-v1` schema ([`patlabor_bench::scaling`]).
//!
//! Two modes:
//!
//! * **Self-host** (default): builds a λ = 4 engine in-process, starts
//!   the daemon on a loopback port, and sweeps the coalescing window
//!   (0 µs, 200 µs, 1 ms). Per window it measures connect-to-first-reply
//!   on a fresh connection, closed-loop request latency percentiles
//!   (p50 / p99 / p999) across 4 pipeline-free connections, saturation
//!   throughput, and the mean coalesced batch size scraped from
//!   `/metrics`. Every reply's frontier is checked bit-identical to the
//!   in-process `Engine::route` answer — the daemon must add transport,
//!   never semantics.
//!
//! * **External** (`PATLABOR_SERVE_ADDR` set, optionally
//!   `PATLABOR_SERVE_HTTP`): the CI serve job's client. Fires the same
//!   fixed-seed workload — plus deadline-exceeded (`deadline_ms: 0`)
//!   and malformed-frame cases — at an already-running daemon, asserts
//!   the documented reply vocabulary, then scrapes `/metrics` and
//!   asserts the counters are present and mutually consistent
//!   (Σ served-by-rung == responses, latency count == responses,
//!   malformed rejections counted). When `PATLABOR_SERVE_LAMBDA` is
//!   set, replies are additionally checked bit-identical against a
//!   local engine at that λ (the CI daemon serves a λ = 4 fixture).
//!   Exits nonzero on any violation.
//!
//! Both modes write `BENCH_PR8.json` at the repository root.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::exit;
use std::time::{Duration, Instant};

use patlabor::{Engine, Net};
use patlabor_bench::scaling::{render_report, serve_rows_json, ReportHeader, ServeRun};
use patlabor_serve::{scrape_metrics, RetryPolicy, RouteClient, RouteRequest};

const SEED: u64 = 0x10ad_6e4e;
/// Valid route requests per run (the "~500 requests" of the CI job).
const REQUESTS: usize = 500;
/// Closed-loop connections driving the daemon concurrently.
const CONNECTIONS: usize = 4;
/// Deadline-exceeded probes in external mode (`deadline_ms: 0`).
const DEADLINE_PROBES: usize = 25;
/// Malformed frames in external mode.
const MALFORMED_PROBES: usize = 10;
/// The coalescing windows the self-host sweep visits, µs.
const WINDOWS_US: [u64; 3] = [0, 200, 1000];
const LAMBDA: u8 = 4;

fn fail(message: &str) -> ! {
    eprintln!("loadgen: FAIL: {message}");
    exit(1);
}

fn check(condition: bool, message: &str) {
    if !condition {
        fail(message);
    }
}

/// The canonical frontier rendering used for bit-identity checks:
/// every `(w, d)` point in frontier order.
fn frontier_key(json: &patlabor_serve::Json) -> String {
    let Some(points) = json.get("frontier").and_then(|f| f.as_array()) else {
        return "<no frontier>".to_string();
    };
    points
        .iter()
        .map(|p| {
            format!(
                "{}:{}",
                p.get("w").and_then(|v| v.as_i64()).unwrap_or(i64::MIN),
                p.get("d").and_then(|v| v.as_i64()).unwrap_or(i64::MIN),
            )
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// The same rendering computed from an in-process route, for the
/// expected side of the comparison.
fn expected_keys(engine: &Engine, nets: &[Net]) -> Vec<String> {
    nets.iter()
        .map(|net| match engine.route(net) {
            Ok(outcome) => outcome
                .frontier
                .iter()
                .map(|(c, _)| format!("{}:{}", c.wirelength, c.delay))
                .collect::<Vec<_>>()
                .join(";"),
            Err(e) => fail(&format!("in-process route failed: {e}")),
        })
        .collect()
}

struct LoadOutcome {
    latencies_ns: Vec<u64>,
    ok: u64,
    degraded: u64,
    retries: u64,
    open_to_first_us: f64,
    wall: Duration,
}

/// Closed-loop load: `CONNECTIONS` threads, each with its own
/// connection, each round-tripping its interleaved share of `nets` one
/// request at a time under a seeded retry budget (`overloaded` replies
/// are retried with deterministic jittered backoff, and the retries
/// spent are recorded in the BENCH row). Replies are asserted `ok` and
/// (when `expected` is given) bit-identical to the in-process frontier.
fn drive(addr: SocketAddr, nets: &[Net], expected: Option<&[String]>) -> LoadOutcome {
    // A fresh connection's first round trip, before the load starts:
    // the open-to-first-response number a cold client sees.
    let opened = Instant::now();
    let mut probe = RouteClient::connect(addr).unwrap_or_else(|e| {
        fail(&format!("connect to {addr} failed: {e}"));
    });
    let request = RouteRequest {
        id: 1 << 32,
        net: nets[0].clone(),
        deadline_ms: None,
    };
    let reply = probe
        .route(&request)
        .unwrap_or_else(|e| fail(&format!("first round trip failed: {e}")));
    check(
        reply.get("ok").and_then(|v| v.as_bool()) == Some(true),
        "first round trip not ok",
    );
    let open_to_first_us = opened.elapsed().as_secs_f64() * 1e6;
    drop(probe);

    let started = Instant::now();
    let mut shards: Vec<LoadOutcome> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CONNECTIONS)
            .map(|t| {
                scope.spawn(move || {
                    let mut client = RouteClient::connect(addr)
                        .unwrap_or_else(|e| fail(&format!("connect failed: {e}")));
                    let policy = RetryPolicy::seeded(SEED ^ t as u64);
                    let mut latencies = Vec::new();
                    let (mut ok, mut degraded, mut retries) = (0u64, 0u64, 0u64);
                    for i in (t..nets.len()).step_by(CONNECTIONS) {
                        let request = RouteRequest {
                            id: i as u64,
                            net: nets[i].clone(),
                            deadline_ms: None,
                        };
                        let sent = Instant::now();
                        let (reply, spent) = client
                            .route_with_retry(&request, &policy)
                            .unwrap_or_else(|e| fail(&format!("request {i} failed: {e}")));
                        latencies.push(sent.elapsed().as_nanos() as u64);
                        retries += u64::from(spent);
                        check(
                            reply.get("id").and_then(|v| v.as_u64()) == Some(i as u64),
                            "reply id does not correlate",
                        );
                        check(
                            reply.get("ok").and_then(|v| v.as_bool()) == Some(true),
                            &format!("request {i} not ok: {}", reply.render()),
                        );
                        ok += 1;
                        if reply.get("degraded").and_then(|v| v.as_bool()) == Some(true) {
                            degraded += 1;
                        }
                        if let Some(expected) = expected {
                            check(
                                frontier_key(&reply) == expected[i],
                                &format!("request {i}: served frontier differs from direct route"),
                            );
                        }
                    }
                    LoadOutcome {
                        latencies_ns: latencies,
                        ok,
                        degraded,
                        retries,
                        open_to_first_us: 0.0,
                        wall: Duration::ZERO,
                    }
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().unwrap_or_else(|_| fail("load worker panicked")))
            .collect()
    });
    let wall = started.elapsed();

    let mut merged = LoadOutcome {
        latencies_ns: Vec::with_capacity(nets.len()),
        ok: 0,
        degraded: 0,
        retries: 0,
        open_to_first_us,
        wall,
    };
    for shard in &mut shards {
        merged.latencies_ns.append(&mut shard.latencies_ns);
        merged.ok += shard.ok;
        merged.degraded += shard.degraded;
        merged.retries += shard.retries;
    }
    merged.latencies_ns.sort_unstable();
    merged
}

/// The q-th quantile of an already-sorted latency list, in µs.
fn quantile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1e3
}

fn run_row(window_us: u64, outcome: &LoadOutcome, rejected: u64, mean_batch: Option<f64>) -> ServeRun {
    ServeRun {
        window_us,
        connections: CONNECTIONS,
        requests: outcome.latencies_ns.len(),
        ok: outcome.ok,
        degraded: outcome.degraded,
        rejected,
        throughput_rps: outcome.latencies_ns.len() as f64 / outcome.wall.as_secs_f64().max(1e-9),
        open_to_first_response_us: outcome.open_to_first_us,
        p50_us: quantile_us(&outcome.latencies_ns, 0.5),
        p99_us: quantile_us(&outcome.latencies_ns, 0.99),
        p999_us: quantile_us(&outcome.latencies_ns, 0.999),
        mean_batch,
        retries: Some(outcome.retries),
    }
}

/// The value of an unlabeled metric family, e.g. `patlabor_queue_depth`.
fn metric_value(exposition: &str, name: &str) -> Option<f64> {
    exposition
        .lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| {
            let mut parts = l.split_whitespace();
            (parts.next() == Some(name)).then(|| parts.next())?
        })
        .and_then(|v| v.parse().ok())
}

/// The sum over every labeled sample of a family, e.g. all
/// `patlabor_served_by_rung_total{rung=...}` lines.
fn metric_sum(exposition: &str, family: &str) -> f64 {
    let prefix = format!("{family}{{");
    exposition
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| {
            let mut parts = l.split_whitespace();
            parts.next().filter(|t| t.starts_with(&prefix))?;
            parts.next()?.parse::<f64>().ok()
        })
        .sum()
}

/// One labeled sample, e.g. `rejected_total{reason="malformed"}`.
fn metric_labeled(exposition: &str, sample: &str) -> Option<f64> {
    metric_value(exposition, sample)
}

fn mean_batch_from(http: Option<SocketAddr>) -> Option<f64> {
    let exposition = scrape_metrics(http?).ok()?;
    let batches = metric_value(&exposition, "patlabor_batches_total")?;
    let nets = metric_value(&exposition, "patlabor_batched_nets_total")?;
    (batches > 0.0).then(|| nets / batches)
}

fn write_report(header: &ReportHeader<'_>, rows: &[ServeRun], headline: &str, notes: &str) {
    let extra = format!(
        "  \"serve_runs\": {},\n  \"headline\": {headline},\n",
        serve_rows_json(rows, "  ")
    );
    let json = render_report(header, &[], &extra, notes);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR8.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| fail(&format!("write BENCH_PR8.json: {e}")));
    eprintln!("wrote {}", path.display());
    print!("{json}");
}

fn workload() -> Vec<Net> {
    patlabor_netgen::iccad_like_suite(SEED, REQUESTS, 8)
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Serial in-process baseline: the direct-call throughput that served
/// latency and throughput are judged against.
fn serial_baseline(engine: &Engine, nets: &[Net]) -> f64 {
    let started = Instant::now();
    for net in nets {
        if engine.route(net).is_err() {
            fail("serial baseline route failed");
        }
    }
    nets.len() as f64 / started.elapsed().as_secs_f64().max(1e-9)
}

// ---------------------------------------------------------------- modes

fn self_host() {
    let hardware = hardware_threads();
    eprintln!(
        "self-host: {REQUESTS} nets (seed {SEED:#x}), λ = {LAMBDA}, \
         {CONNECTIONS} connections, hardware threads = {hardware}"
    );
    let engine = Engine::with_table(patlabor_lut::LutBuilder::new(LAMBDA).threads(hardware).build());
    let nets = workload();
    let expected = expected_keys(&engine, &nets);
    let serial = serial_baseline(&engine, &nets);

    let mut rows = Vec::new();
    for window_us in WINDOWS_US {
        let config = patlabor_serve::ServeConfig {
            http_addr: Some("127.0.0.1:0".to_string()),
            window: Duration::from_micros(window_us),
            ..patlabor_serve::ServeConfig::default()
        };
        let server = patlabor_serve::serve(engine.clone(), config)
            .unwrap_or_else(|e| fail(&format!("serve failed to start: {e}")));
        let outcome = drive(server.addr(), &nets, Some(&expected));
        let mean_batch = mean_batch_from(server.http_addr());
        let summary = server.shutdown();
        check(summary.rejected == 0, "self-host run saw admission rejections");
        check(summary.malformed == 0, "self-host run saw malformed frames");
        let row = run_row(window_us, &outcome, summary.rejected, mean_batch);
        eprintln!(
            "window {:>4} µs: {:.0} req/s, p50 {:.0} µs, p99 {:.0} µs, \
             mean batch {:.2}",
            window_us,
            row.throughput_rps,
            row.p50_us,
            row.p99_us,
            mean_batch.unwrap_or(0.0),
        );
        rows.push(row);
    }

    let best = rows
        .iter()
        .max_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps))
        .expect("at least one window");
    let headline = format!(
        "{{\"best_window_us\": {}, \"saturation_rps\": {:.2}, \
         \"served_vs_direct_identical\": true}}",
        best.window_us, best.throughput_rps
    );
    let header = ReportHeader {
        bench: "loadgen",
        nets: REQUESTS,
        seed: SEED,
        hardware_threads: hardware,
        serial_nets_per_sec: serial,
    };
    write_report(
        &header,
        &rows,
        &headline,
        "self-host coalescing-window sweep; every served frontier checked \
         bit-identical to the in-process route; latencies are closed-loop \
         round trips including the accumulation window",
    );
}

fn external(addr: SocketAddr) {
    let http: Option<SocketAddr> = std::env::var("PATLABOR_SERVE_HTTP")
        .ok()
        .map(|s| s.parse().unwrap_or_else(|_| fail("bad PATLABOR_SERVE_HTTP")));
    let lambda: Option<u8> = std::env::var("PATLABOR_SERVE_LAMBDA")
        .ok()
        .map(|s| s.parse().unwrap_or_else(|_| fail("bad PATLABOR_SERVE_LAMBDA")));
    let window_us: u64 = std::env::var("PATLABOR_SERVE_WINDOW_US")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    eprintln!(
        "external: daemon {addr}, http {http:?}, {REQUESTS} valid + \
         {DEADLINE_PROBES} deadline + {MALFORMED_PROBES} malformed requests"
    );
    let nets = workload();
    let expected = lambda.map(|lambda| {
        let engine =
            Engine::with_table(patlabor_lut::LutBuilder::new(lambda).threads(hardware_threads()).build());
        expected_keys(&engine, &nets)
    });

    // The main closed-loop load.
    let outcome = drive(addr, &nets, expected.as_deref());
    check(outcome.ok == REQUESTS as u64, "not every valid request was served");

    // Deadline-exceeded probes: an impossible budget must degrade, not
    // fail — `ok` with `degraded: true` and a deadline in the trace.
    // Degree-2 nets are excluded (their closed form beats any
    // deadline), and the nets come from a *different* seed than the
    // main load: a net already routed would be a frontier-cache hit,
    // and a cache hit legitimately serves full-fidelity with no budget.
    let mut probe = RouteClient::connect(addr)
        .unwrap_or_else(|e| fail(&format!("deadline probe connect failed: {e}")));
    let deadline_pool = patlabor_netgen::iccad_like_suite(SEED ^ 0xdead_beef, 4 * DEADLINE_PROBES, 8);
    let deadline_nets: Vec<&Net> = deadline_pool
        .iter()
        .filter(|n| n.degree() >= 3)
        .take(DEADLINE_PROBES)
        .collect();
    check(
        deadline_nets.len() == DEADLINE_PROBES,
        "probe pool has too few degree>=3 nets for the deadline probes",
    );
    for (i, net) in deadline_nets.iter().enumerate() {
        let request = RouteRequest {
            id: 10_000 + i as u64,
            net: (*net).clone(),
            deadline_ms: Some(0),
        };
        let reply = probe
            .route(&request)
            .unwrap_or_else(|e| fail(&format!("deadline probe {i} failed: {e}")));
        check(
            reply.get("ok").and_then(|v| v.as_bool()) == Some(true),
            "deadline probe was refused instead of degraded",
        );
        check(
            reply.get("degraded").and_then(|v| v.as_bool()) == Some(true),
            "deadline probe was not served degraded",
        );
    }

    // Malformed frames: each one answered with the documented error,
    // on the same connection, without poisoning it.
    let malformed: [&[u8]; 5] = [
        b"not json at all",
        br#"{"id": 1}"#,
        br#"{"id": 2, "net": "nope"}"#,
        br#"{"id": 3, "net": [[0,0]]}"#,
        br#"{"id": 4, "net": [[0,0],[1]]}"#,
    ];
    for i in 0..MALFORMED_PROBES {
        probe
            .send_raw(malformed[i % malformed.len()])
            .unwrap_or_else(|e| fail(&format!("malformed send failed: {e}")));
        let reply = probe
            .recv()
            .unwrap_or_else(|e| fail(&format!("malformed recv failed: {e}")))
            .unwrap_or_else(|| fail("server hung up on a malformed frame"));
        check(
            reply.get("error").and_then(|v| v.as_str()) == Some("malformed"),
            "malformed frame not rejected with error=malformed",
        );
    }
    // The connection still works after the malformed barrage.
    let request = RouteRequest {
        id: 20_000,
        net: nets[0].clone(),
        deadline_ms: None,
    };
    let reply = probe
        .route(&request)
        .unwrap_or_else(|e| fail(&format!("post-malformed request failed: {e}")));
    check(
        reply.get("ok").and_then(|v| v.as_bool()) == Some(true),
        "connection poisoned after malformed frames",
    );

    // The metrics plane: families present and mutually consistent.
    let mean_batch = if let Some(http) = http {
        let exposition =
            scrape_metrics(http).unwrap_or_else(|e| fail(&format!("metrics scrape failed: {e}")));
        for family in [
            "patlabor_requests_total",
            "patlabor_responses_total",
            "patlabor_queue_depth",
            "patlabor_batches_total",
            "patlabor_batched_nets_total",
            "patlabor_deadline_hits_total",
            "patlabor_cache_hit_rate",
            "patlabor_latency_seconds_count",
        ] {
            check(
                metric_value(&exposition, family).is_some(),
                &format!("metrics family missing: {family}"),
            );
        }
        let responses = metric_value(&exposition, "patlabor_responses_total").unwrap_or(0.0);
        let valid_sent = (REQUESTS + DEADLINE_PROBES + 2) as f64; // + probe + post-malformed
        check(responses >= valid_sent, "responses_total below what we sent");
        check(
            metric_value(&exposition, "patlabor_requests_total").unwrap_or(0.0) >= valid_sent,
            "requests_total below what we sent",
        );
        check(
            metric_labeled(&exposition, "patlabor_rejected_total{reason=\"malformed\"}")
                .unwrap_or(0.0)
                >= MALFORMED_PROBES as f64,
            "malformed rejections not counted",
        );
        check(
            metric_value(&exposition, "patlabor_deadline_hits_total").unwrap_or(0.0)
                >= DEADLINE_PROBES as f64,
            "deadline hits not counted",
        );
        // Internal consistency, independent of who else hit the daemon:
        // every response was served by exactly one rung and timed once.
        check(
            metric_sum(&exposition, "patlabor_served_by_rung_total") == responses,
            "served-by-rung histogram does not sum to responses_total",
        );
        check(
            metric_value(&exposition, "patlabor_latency_seconds_count") == Some(responses),
            "latency histogram count does not match responses_total",
        );
        for quantile in ["0.5", "0.99", "0.999"] {
            check(
                metric_labeled(
                    &exposition,
                    &format!("patlabor_latency_seconds{{quantile=\"{quantile}\"}}"),
                )
                .is_some(),
                "latency quantile missing from /metrics",
            );
        }
        eprintln!("metrics plane: all families present and consistent");
        metric_value(&exposition, "patlabor_batches_total")
            .zip(metric_value(&exposition, "patlabor_batched_nets_total"))
            .filter(|(b, _)| *b > 0.0)
            .map(|(b, n)| n / b)
    } else {
        None
    };

    // The serial baseline comes from a local λ = 4 engine (or the
    // daemon's λ when given) so the report's speed context is real.
    let baseline_engine = Engine::with_table(
        patlabor_lut::LutBuilder::new(lambda.unwrap_or(LAMBDA))
            .threads(hardware_threads())
            .build(),
    );
    let serial = serial_baseline(&baseline_engine, &nets);
    let row = run_row(window_us, &outcome, 0, mean_batch);
    let headline = format!(
        "{{\"mode\": \"external\", \"deadline_probes\": {DEADLINE_PROBES}, \
         \"malformed_probes\": {MALFORMED_PROBES}, \
         \"served_vs_direct_identical\": {}}}",
        expected.is_some()
    );
    let header = ReportHeader {
        bench: "loadgen",
        nets: REQUESTS,
        seed: SEED,
        hardware_threads: hardware_threads(),
        serial_nets_per_sec: serial,
    };
    write_report(
        &header,
        std::slice::from_ref(&row),
        &headline,
        "external daemon mode (CI serve job): fixed-seed load plus deadline \
         and malformed probes; /metrics families asserted present and \
         mutually consistent",
    );
    eprintln!("external mode: all checks passed");
}

fn main() {
    match std::env::var("PATLABOR_SERVE_ADDR") {
        Ok(addr) => {
            let addr = addr
                .parse()
                .unwrap_or_else(|_| fail("PATLABOR_SERVE_ADDR is not a socket address"));
            external(addr);
        }
        Err(_) => self_host(),
    }
}
