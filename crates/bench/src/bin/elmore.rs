//! Extension experiment: re-ranking PatLabor's Pareto set under the
//! Elmore (RC) delay model — the paper's future-work direction ("extend
//! our approach to other metrics of routing trees").
//!
//! The Pareto set is computed for the paper's (w, path-length) objectives;
//! per net we then pick the member with the smallest *Elmore* delay and
//! compare against single-solution flows and a SALT sweep evaluated the
//! same way.

use patlabor::{PatLabor, RouterConfig};
use patlabor_baselines::{rsma, rsmt, salt};
use patlabor_bench::{paper_note, render_table, scaled};
use patlabor_tree::{max_elmore, ElmoreModel};

fn main() {
    let net_count = scaled(80, 15);
    println!("Elmore re-ranking of PatLabor Pareto sets ({net_count} nets)\n");
    let router = PatLabor::with_config(RouterConfig {
        lambda: 5,
        ..RouterConfig::default()
    });
    let model = ElmoreModel::default();
    let nets: Vec<_> = patlabor_netgen::iccad_like_suite(0xe180, net_count, 30)
        .into_iter()
        .map(|n| n.dedup_pins())
        .filter(|n| n.degree() >= 4)
        .collect();

    let mut sums = [0.0f64; 4]; // pareto-best, rsmt, spt, salt-best
    let mut agree = 0usize;
    for net in &nets {
        let frontier = router.route_frontier(net);
        let best_pareto = frontier
            .iter()
            .map(|(_, t)| max_elmore(t, &model))
            .fold(f64::INFINITY, f64::min);
        let min_path = frontier.min_delay().expect("non-empty").1;
        if (max_elmore(min_path, &model) - best_pareto).abs() < 1e-9 {
            agree += 1;
        }
        let rsmt_d = max_elmore(&rsmt::rsmt_tree(net), &model);
        let spt_d = max_elmore(&rsma::cl_arborescence(net), &model);
        let salt_best = salt::salt_pareto(net, &salt::DEFAULT_EPSILONS)
            .iter()
            .map(|(_, t)| max_elmore(t, &model))
            .fold(f64::INFINITY, f64::min);
        // Normalize by the net's Pareto-best so nets average fairly.
        sums[0] += 1.0;
        sums[1] += rsmt_d / best_pareto;
        sums[2] += spt_d / best_pareto;
        sums[3] += salt_best / best_pareto;
    }
    let n = nets.len() as f64;
    let rows = vec![
        vec!["PatLabor set, Elmore-best pick".into(), "1.000".into()],
        vec!["always RSMT".into(), format!("{:.3}", sums[1] / n)],
        vec!["always SPT (CL)".into(), format!("{:.3}", sums[2] / n)],
        vec!["SALT sweep, Elmore-best pick".into(), format!("{:.3}", sums[3] / n)],
    ];
    println!(
        "{}",
        render_table(&["strategy", "avg max-Elmore (normalized)"], &rows)
    );
    println!(
        "\npath-delay-optimal member is also Elmore-optimal on {agree}/{} nets",
        nets.len()
    );
    paper_note(
        "not in the paper (its conclusion proposes extending to other metrics). \
         Measured shape: the path-length Pareto pick clearly beats the RSMT flow \
         and nearly ties a SALT sweep, and the path-delay-optimal member is almost \
         always the Elmore-best member of the set; but a dedicated arborescence can \
         still win under Elmore because RC delay rewards load *isolation*, not just \
         short paths — evidence that a real Elmore extension needs Elmore inside \
         the optimization loop, exactly why the paper lists it as future work.",
    );
}
