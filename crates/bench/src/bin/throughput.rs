//! Batch-routing throughput: the lock-free driver and the frontier cache
//! measured on a fixed seeded workload, written to `BENCH_PR1.json` at
//! the repository root.
//!
//! The workload mixes degrees 3–12 (tabulated nets, cached-query nets and
//! local-search nets) and three coordinate spans, so the cache sees both
//! dense congruence classes (small spans, many repeated Hanan patterns)
//! and essentially unique nets (chip-scale spans). Every configuration
//! routes the same nets; `PATLABOR_SCALE` scales the net count.
//!
//! Results are honest wall-clock numbers for *this* machine —
//! `hardware_threads` is recorded so a 1-core container's lack of
//! parallel speedup reads as what it is.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use patlabor::{CacheConfig, Net, PatLabor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 0x7412_0be7;

fn workload(count: usize) -> Vec<Net> {
    let mut rng = StdRng::seed_from_u64(SEED);
    // Repeated cells and macros give real placements many congruent
    // nets: identical relative pin geometry at different offsets and
    // orientations. A third of the workload instantiates a small pool of
    // master patterns that way (cache hits after the first encounter);
    // the rest are fresh random nets of mixed degree (mostly misses, and
    // above λ the local-search path, which bypasses the cache).
    let masters: Vec<Net> = (0..64)
        .map(|_| {
            let degree = rng.gen_range(3..=5usize);
            patlabor_netgen::uniform_net(&mut rng, degree, 64)
        })
        .collect();
    (0..count)
        .map(|i| {
            if i % 3 == 0 {
                let master = &masters[rng.gen_range(0..masters.len())];
                let dx = rng.gen_range(0..100_000i64);
                let dy = rng.gen_range(0..100_000i64);
                let swap = rng.gen_bool(0.5);
                let flip_x = rng.gen_bool(0.5);
                let flip_y = rng.gen_bool(0.5);
                master.map_points(|p| {
                    let (mut x, mut y) = (p.x, p.y);
                    if swap {
                        std::mem::swap(&mut x, &mut y);
                    }
                    if flip_x {
                        x = -x;
                    }
                    if flip_y {
                        y = -y;
                    }
                    patlabor::Point::new(x + dx, y + dy)
                })
            } else {
                let degree = rng.gen_range(3..=12);
                let span = if i % 3 == 1 { 24 } else { 10_000 };
                patlabor_netgen::uniform_net(&mut rng, degree, span)
            }
        })
        .collect()
}

struct Run {
    threads: usize,
    cache: bool,
    nets_per_sec: f64,
    cache_hit_rate: f64,
    speedup_vs_serial: f64,
    /// More worker threads than the machine has hardware threads: the
    /// numbers then measure scheduler time-slicing, not scaling, so the
    /// headline summary skips these runs.
    oversubscribed: bool,
}

fn measure(table: &patlabor::LookupTable, nets: &[Net], threads: usize, cache: bool) -> (f64, f64) {
    // A fresh router per run: every measurement starts from a cold cache.
    let router = PatLabor::with_table(table.clone()).with_cache(if cache {
        CacheConfig::default()
    } else {
        CacheConfig::disabled()
    });
    let start = Instant::now();
    let results = router.route_batch(nets, threads);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(results.len(), nets.len());
    std::hint::black_box(&results);
    let hit_rate = router.cache_stats().map_or(0.0, |s| s.hit_rate());
    (nets.len() as f64 / secs, hit_rate)
}

fn main() {
    let count = patlabor_bench::scaled(50_000, 500);
    let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!("generating {count} nets (degrees 3..=12, seed {SEED:#x}) ...");
    let nets = workload(count);
    let table = patlabor_lut::LutBuilder::new(5).build();

    // Untimed warmup: the process's first pass over the workload runs
    // cold (allocator, page cache, CPU frequency) and would otherwise
    // penalize whichever configuration happens to be measured first.
    eprintln!("warmup ...");
    measure(&table, &nets, 1, false);

    // Serial baseline: one thread, no cache.
    eprintln!("serial baseline ...");
    let (serial_nps, _) = measure(&table, &nets, 1, false);

    let mut runs = Vec::new();
    for cache in [false, true] {
        for threads in [1usize, 2, 4, 8] {
            eprintln!("threads = {threads}, cache = {cache} ...");
            let (nets_per_sec, cache_hit_rate) = measure(&table, &nets, threads, cache);
            runs.push(Run {
                threads,
                cache,
                nets_per_sec,
                cache_hit_rate,
                speedup_vs_serial: nets_per_sec / serial_nps,
                oversubscribed: threads > hardware,
            });
        }
    }

    println!(
        "{}",
        patlabor_bench::render_table(
            &["threads", "cache", "nets/s", "hit rate", "speedup", "oversub"],
            &runs
                .iter()
                .map(|r| {
                    vec![
                        r.threads.to_string(),
                        if r.cache { "on" } else { "off" }.to_string(),
                        format!("{:.0}", r.nets_per_sec),
                        format!("{:.3}", r.cache_hit_rate),
                        format!("{:.2}x", r.speedup_vs_serial),
                        if r.oversubscribed { "yes" } else { "" }.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    );

    // Headline: the best configuration among runs the machine can
    // actually execute in parallel. Oversubscribed runs stay in the JSON
    // for the record but never in the summary.
    let headline = runs
        .iter()
        .filter(|r| !r.oversubscribed)
        .max_by(|a, b| a.nets_per_sec.total_cmp(&b.nets_per_sec))
        .expect("the 1-thread runs are never oversubscribed");
    println!(
        "headline: {:.0} nets/s ({} thread(s), cache {}; oversubscribed runs excluded)",
        headline.nets_per_sec,
        headline.threads,
        if headline.cache { "on" } else { "off" },
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"batch_routing_throughput\",");
    let _ = writeln!(json, "  \"nets\": {count},");
    let _ = writeln!(json, "  \"degrees\": [3, 12],");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"hardware_threads\": {hardware},");
    let _ = writeln!(json, "  \"serial_nets_per_sec\": {serial_nps:.2},");
    let _ = writeln!(
        json,
        "  \"headline\": {{\"threads\": {}, \"cache\": {}, \"nets_per_sec\": {:.2}}},",
        headline.threads, headline.cache, headline.nets_per_sec
    );
    let _ = writeln!(json, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"cache\": {}, \"nets_per_sec\": {:.2}, \
             \"cache_hit_rate\": {:.4}, \"speedup_vs_serial\": {:.4}, \
             \"oversubscribed\": {}}}{comma}",
            r.threads,
            r.cache,
            r.nets_per_sec,
            r.cache_hit_rate,
            r.speedup_vs_serial,
            r.oversubscribed
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"notes\": \"headline considers only runs with threads <= hardware_threads; \
         oversubscribed runs measure scheduler time-slicing, not scaling. The 8-thread \
         cache-on slowdown previously reported here was measured oversubscribed on one \
         hardware thread — treat it as lock/scheduler contention to re-measure on a \
         multi-core host, not as a cache regression.\""
    );
    let _ = writeln!(json, "}}");

    // crates/bench → repository root.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR1.json");
    std::fs::write(&path, &json).expect("write BENCH_PR1.json");
    eprintln!("wrote {}", path.display());
    patlabor_bench::paper_note(
        "the paper evaluates all methods multithreaded (footnote 4); this harness \
         measures the batch driver and frontier cache on the machine at hand",
    );
}
