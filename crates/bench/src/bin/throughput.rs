//! Batch-routing throughput: the work-stealing driver and the frontier
//! cache measured on a fixed seeded workload, written to `BENCH_PR1.json`
//! at the repository root in the shared `scaling-v1` schema
//! ([`patlabor_bench::scaling`], also used by `bin/scaling.rs`).
//!
//! The workload mixes degrees 3–12 (tabulated nets, cached-query nets and
//! local-search nets) and three coordinate spans, so the cache sees both
//! dense congruence classes (small spans, many repeated Hanan patterns)
//! and essentially unique nets (chip-scale spans). Every configuration
//! routes the same nets; `PATLABOR_SCALE` scales the net count.
//!
//! Results are honest wall-clock numbers for *this* machine: runs with
//! more worker threads than hardware threads land in the schema's
//! `oversubscribed_runs` array — structurally separated, because they
//! measure scheduler time-slicing, not scaling.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use patlabor::{CacheConfig, Net, PatLabor};
use patlabor_bench::scaling::ScalingRun;

const SEED: u64 = 0x7412_0be7;

fn measure(table: &patlabor::LookupTable, nets: &[Net], threads: usize, cache: bool) -> (f64, f64) {
    // A fresh router per run: every measurement starts from a cold cache.
    let router = PatLabor::with_table(table.clone()).with_cache(if cache {
        CacheConfig::default()
    } else {
        CacheConfig::disabled()
    });
    let start = Instant::now();
    let results = router.route_batch(nets, threads);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(results.len(), nets.len());
    std::hint::black_box(&results);
    let hit_rate = router.cache_stats().map_or(0.0, |s| s.hit_rate());
    (nets.len() as f64 / secs, hit_rate)
}

fn main() {
    let count = patlabor_bench::scaled(50_000, 500);
    let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!("generating {count} nets (degrees 3..=12, seed {SEED:#x}) ...");
    let nets = patlabor_bench::mixed_workload(count, SEED);
    let table = patlabor_lut::LutBuilder::new(5).build();

    // Untimed warmup: the process's first pass over the workload runs
    // cold (allocator, page cache, CPU frequency) and would otherwise
    // penalize whichever configuration happens to be measured first.
    eprintln!("warmup ...");
    measure(&table, &nets, 1, false);

    // Serial baseline: one thread, no cache.
    eprintln!("serial baseline ...");
    let (serial_nps, _) = measure(&table, &nets, 1, false);

    let mut runs = Vec::new();
    for cache in [false, true] {
        for threads in [1usize, 2, 4, 8] {
            eprintln!("threads = {threads}, cache = {cache} ...");
            let (nets_per_sec, cache_hit_rate) = measure(&table, &nets, threads, cache);
            runs.push(ScalingRun {
                threads,
                cache,
                nets_per_sec,
                cache_hit_rate,
                speedup_vs_serial: nets_per_sec / serial_nps,
                ..ScalingRun::default()
            });
        }
    }

    println!(
        "{}",
        patlabor_bench::render_table(
            &["threads", "cache", "nets/s", "hit rate", "speedup", "oversub"],
            &runs
                .iter()
                .map(|r| {
                    vec![
                        r.threads.to_string(),
                        if r.cache { "on" } else { "off" }.to_string(),
                        format!("{:.0}", r.nets_per_sec),
                        format!("{:.3}", r.cache_hit_rate),
                        format!("{:.2}x", r.speedup_vs_serial),
                        if r.oversubscribed(hardware) { "yes" } else { "" }.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    );

    // Headline: the best configuration among runs the machine can
    // actually execute in parallel. Oversubscribed runs stay in the JSON
    // for the record (their own array) but never in the summary.
    let headline = runs
        .iter()
        .filter(|r| !r.oversubscribed(hardware))
        .max_by(|a, b| a.nets_per_sec.total_cmp(&b.nets_per_sec))
        .expect("the 1-thread runs are never oversubscribed");
    println!(
        "headline: {:.0} nets/s ({} thread(s), cache {}; oversubscribed runs excluded)",
        headline.nets_per_sec,
        headline.threads,
        if headline.cache { "on" } else { "off" },
    );

    let mut extra = String::new();
    let _ = writeln!(
        extra,
        "  \"headline\": {{\"threads\": {}, \"cache\": {}, \"nets_per_sec\": {:.2}}},",
        headline.threads, headline.cache, headline.nets_per_sec
    );
    let json = patlabor_bench::scaling::render_report(
        &patlabor_bench::scaling::ReportHeader {
            bench: "batch_routing_throughput",
            nets: count,
            seed: SEED,
            hardware_threads: hardware,
            serial_nets_per_sec: serial_nps,
        },
        &runs,
        &extra,
        "scaling_runs holds only runs with threads <= hardware_threads; \
         oversubscribed_runs measure scheduler time-slicing, not scaling, and are \
         excluded from the headline. For the full scaling curve with worker \
         utilization and steal telemetry, see BENCH_PR7.json (bin/scaling.rs).",
    );

    // crates/bench → repository root.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR1.json");
    std::fs::write(&path, &json).expect("write BENCH_PR1.json");
    eprintln!("wrote {}", path.display());
    patlabor_bench::paper_note(
        "the paper evaluates all methods multithreaded (footnote 4); this harness \
         measures the batch driver and frontier cache on the machine at hand",
    );
}
