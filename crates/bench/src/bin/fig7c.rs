//! Figure 7(c): averaged Pareto curves on 100 random degree-100 nets.
//!
//! The paper's stress test beyond the benchmark's degree range. The
//! divide-and-conquer YSD substitute is expected to lose badly on
//! wirelength here — the weakness the paper calls out.

use patlabor::{PatLabor, RouterConfig};
use patlabor_bench::{
    average_curve, normalizers, paper_note, render_table, run_method, scaled, Method,
};
use rand::SeedableRng;

fn main() {
    let net_count = scaled(100, 8);
    let degree = 100usize;
    println!("Fig 7(c) — {net_count} random degree-{degree} nets\n");

    let router = PatLabor::with_config(RouterConfig {
        lambda: 5,
        ..RouterConfig::default()
    });
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xf17c);

    let mut pooled: [Vec<_>; 4] = Default::default();
    let mut totals = [0.0f64; 4];
    for _ in 0..net_count {
        let net = patlabor_netgen::uniform_net(&mut rng, degree, 100_000);
        let norms = normalizers(&net);
        for (mi, method) in Method::ALL.iter().enumerate() {
            let run = run_method(*method, &net, &router);
            totals[mi] += run.elapsed.as_secs_f64();
            pooled[mi].push((run.set, norms));
        }
    }

    // Wider grid: degree-100 RSMTs sit far from the delay optimum.
    let grid: Vec<f64> = (0..=12).map(|i| 1.0 + i as f64 * 0.1).collect();
    let averaged: Vec<Vec<f64>> = pooled.iter().map(|p| average_curve(&grid, p)).collect();
    let mut rows = Vec::new();
    for (gi, g) in grid.iter().enumerate() {
        let mut row = vec![format!("{g:.2}")];
        for avg in &averaged {
            row.push(format!("{:.4}", avg[gi]));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = ["w/w(FLUTE)"]
        .into_iter()
        .chain(Method::ALL.iter().map(|m| m.name()))
        .collect();
    println!("{}", render_table(&headers, &rows));

    println!("\nclamp-free quality (avg approximation factor vs combined frontier; 1.0 = best):");
    let factors = patlabor_bench::approximation_summary(&pooled);
    let mut q_rows = Vec::new();
    for (mi, m) in Method::ALL.iter().enumerate() {
        q_rows.push(vec![m.name().to_string(), format!("{:.4}", factors[mi])]);
    }
    println!("{}", render_table(&["method", "avg factor"], &q_rows));

    println!("\ntotal runtimes:");
    let mut time_rows = Vec::new();
    for (mi, m) in Method::ALL.iter().enumerate() {
        time_rows.push(vec![m.name().to_string(), format!("{:.3}s", totals[mi])]);
    }
    println!("{}", render_table(&["method", "total time"], &time_rows));
    paper_note(
        "paper Fig 7(c): at low wirelength budgets PatLabor matches SALT; at high \
         budgets PatLabor is tighter; YSD's divide-and-conquer performs poorly on \
         wirelength (its curve starts far right / stays high). Expect the same \
         ordering: YSD* clearly worst at w-budgets near 1.0, PatLabor <= SALT at the \
         high-w end.",
    );
}
