//! Theorem 1: worst-case instances with growing Pareto frontiers.
//!
//! The paper constructs chained "S" gadgets (their Fig. 4) whose frontier
//! is `2^Ω(n)`. We chain pass-through hairpin gadgets at geometric scales
//! (see `patlabor_netgen::exponential_frontier_net` and DESIGN.md §4) and
//! verify the frontier growth with the exact Pareto-DW, contrasting it
//! with the flat frontiers of typical random instances of the same degree.

use patlabor_bench::{paper_note, render_table};
use patlabor_dw::{numeric::pareto_frontier, DwConfig};
use rand::SeedableRng;

fn main() {
    println!("Theorem 1 — adversarial frontier growth (exact Pareto-DW)\n");
    let mut rows = Vec::new();
    for gadgets in 1..=4usize {
        let net = patlabor_netgen::exponential_frontier_net(gadgets);
        let n = net.degree();
        let f = pareto_frontier(&net, &DwConfig::default());
        // Random instances of the same degree for contrast.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x7e0 + gadgets as u64);
        let trials = if n <= 10 { 20 } else { 5 };
        let mut random_max = 0usize;
        for _ in 0..trials {
            let r = patlabor_netgen::uniform_net(&mut rng, n, 1000);
            random_max = random_max.max(pareto_frontier(&r, &DwConfig::default()).len());
        }
        rows.push(vec![
            gadgets.to_string(),
            n.to_string(),
            f.len().to_string(),
            random_max.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["gadgets m", "degree n", "|F| gadget chain", "max |F| random"],
            &rows
        )
    );
    paper_note(
        "paper Thm 1: there exist instances with 2^Omega(n) frontier solutions, built \
         from chained gadgets; real instances stay polynomial (Thm 2). The Fig-4 11-pin \
         S-gadget geometry is not in the paper text; our verified hairpin chain grows \
         |F| = m with m gadgets (super-constant, unlike typical random nets of the same \
         degree) and demonstrates the same serial pass-through mechanism.",
    );
}
