//! v3 query-kernel throughput: dot-product scoring vs the materialize-all
//! reference path on a tabulated-degree workload, written to
//! `BENCH_PR2.json` at the repository root.
//!
//! Both paths answer every net identically (asserted during warmup); the
//! difference is purely how many `RoutingTree`s get built. The reference
//! path materializes every candidate topology to score it — the pre-v3
//! behaviour and the PR 1 baseline's hot path — while the v3 kernel
//! scores candidates by integer dot products against the stored cost rows
//! and materializes only the frontier survivors.
//!
//! The dot-product pass is instrumented per stage **inside the measured
//! run**: *lookup* (canonicalization + key search for the candidate
//! ids), *score* (dot products + numeric prune) and *materialize*
//! (witness-tree construction for survivors). One pass therefore yields
//! both the throughput number and the stage fractions — no separately
//! instrumented rerun whose mix could drift from the measured one. The
//! cost is four monotonic-clock reads per net (tens of nanoseconds
//! against a multi-microsecond query), folded equally into every stage.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use patlabor_lut::{LookupTable, LutBuilder};
use patlabor_netgen::uniform_net;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 0x5eed_0bec;
const LAMBDA: u8 = 6;

fn workload(count: usize) -> Vec<patlabor_geom::Net> {
    let mut rng = StdRng::seed_from_u64(SEED);
    // Every net is within λ — this bench isolates the tabulated hot path
    // that BENCH_PR1's mixed workload only partially exercises. Two spans
    // mirror the PR 1 harness (dense cells and chip-scale nets).
    (0..count)
        .map(|i| {
            let degree = rng.gen_range(3..=LAMBDA as usize);
            let span = if i % 2 == 0 { 24 } else { 10_000 };
            uniform_net(&mut rng, degree, span)
        })
        .collect()
}

/// Nets/sec of the materialize-all reference path (PR 1 behaviour).
fn measure_reference(table: &LookupTable, nets: &[patlabor_geom::Net]) -> f64 {
    let start = Instant::now();
    for net in nets {
        let class = table.classify(net).expect("tabulated degree");
        let frontier = table
            .query_materialize_all(net, &class)
            .expect("tabulated pattern");
        std::hint::black_box(&frontier);
    }
    nets.len() as f64 / start.elapsed().as_secs_f64()
}

struct Stages {
    lookup: Duration,
    score: Duration,
    materialize: Duration,
    candidates: u64,
    survivors: u64,
}

/// The dot-product path, end to end, with per-stage wall-clock
/// accumulation inside the same measured loop. Returns both the
/// throughput (from the loop's own start-to-finish clock) and the stage
/// breakdown, so the fractions describe exactly the run the nets/sec
/// number came from.
fn measure_staged(table: &LookupTable, nets: &[patlabor_geom::Net]) -> (f64, Stages) {
    let mut s = Stages {
        lookup: Duration::ZERO,
        score: Duration::ZERO,
        materialize: Duration::ZERO,
        candidates: 0,
        survivors: 0,
    };
    let start = Instant::now();
    for net in nets {
        let t0 = Instant::now();
        let class = table.classify(net).expect("tabulated degree");
        let ids = table.candidate_ids(&class).expect("tabulated pattern");
        let t1 = Instant::now();
        let frontier = table.score_candidates(&class, ids);
        let t2 = Instant::now();
        for &(_, id) in &frontier {
            std::hint::black_box(table.materialize(net, &class, id));
        }
        let t3 = Instant::now();
        s.lookup += t1 - t0;
        s.score += t2 - t1;
        s.materialize += t3 - t2;
        s.candidates += ids.len() as u64;
        s.survivors += frontier.len() as u64;
    }
    let nps = nets.len() as f64 / start.elapsed().as_secs_f64();
    (nps, s)
}

fn main() {
    let count = patlabor_bench::scaled(50_000, 500);
    let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!("generating {count} tabulated nets (degrees 3..={LAMBDA}, seed {SEED:#x}) ...");
    let nets = workload(count);
    eprintln!("building lambda={LAMBDA} tables ...");
    let table = LutBuilder::new(LAMBDA).build();

    // Warmup doubles as an equivalence check: both paths must agree on
    // every net before their speeds are worth comparing.
    eprintln!("warmup + equivalence check ...");
    for net in &nets {
        let class = table.classify(net).expect("tabulated degree");
        let fast = table.query_witnesses(net, &class).expect("tabulated pattern");
        let reference = table
            .query_materialize_all(net, &class)
            .expect("tabulated pattern");
        assert_eq!(
            fast.0.cost_vec(),
            reference.cost_vec(),
            "v3 kernel diverged from the reference path on {:?}",
            net.pins()
        );
    }

    eprintln!("reference (materialize-all) pass ...");
    let reference_nps = measure_reference(&table, &nets);
    eprintln!("staged dot-product pass (throughput + stage split, one run) ...");
    let (v3_nps, stages) = measure_staged(&table, &nets);
    let speedup = v3_nps / reference_nps;
    let staged_total = (stages.lookup + stages.score + stages.materialize).as_secs_f64();
    let frac = |d: Duration| d.as_secs_f64() / staged_total;

    println!(
        "{}",
        patlabor_bench::render_table(
            &["path", "nets/s", "speedup"],
            &[
                vec![
                    "materialize-all (reference)".into(),
                    format!("{reference_nps:.0}"),
                    "1.00x".into(),
                ],
                vec![
                    "dot-product (staged)".into(),
                    format!("{v3_nps:.0}"),
                    format!("{speedup:.2}x"),
                ],
            ],
        )
    );
    println!(
        "stages: lookup {:.1}%, score {:.1}%, materialize {:.1}%  \
         (candidates/net {:.1}, survivors/net {:.1})",
        100.0 * frac(stages.lookup),
        100.0 * frac(stages.score),
        100.0 * frac(stages.materialize),
        stages.candidates as f64 / nets.len() as f64,
        stages.survivors as f64 / nets.len() as f64,
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"lut_query_kernel\",");
    let _ = writeln!(json, "  \"nets\": {count},");
    let _ = writeln!(json, "  \"lambda\": {LAMBDA},");
    let _ = writeln!(json, "  \"degrees\": [3, {LAMBDA}],");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"hardware_threads\": {hardware},");
    let _ = writeln!(json, "  \"threads\": 1,");
    let _ = writeln!(
        json,
        "  \"reference_materialize_all_nets_per_sec\": {reference_nps:.2},"
    );
    let _ = writeln!(json, "  \"v3_dot_product_nets_per_sec\": {v3_nps:.2},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.4},");
    let _ = writeln!(json, "  \"stages\": {{");
    let _ = writeln!(
        json,
        "    \"lookup_secs\": {:.6}, \"lookup_frac\": {:.4},",
        stages.lookup.as_secs_f64(),
        frac(stages.lookup)
    );
    let _ = writeln!(
        json,
        "    \"score_secs\": {:.6}, \"score_frac\": {:.4},",
        stages.score.as_secs_f64(),
        frac(stages.score)
    );
    let _ = writeln!(
        json,
        "    \"materialize_secs\": {:.6}, \"materialize_frac\": {:.4}",
        stages.materialize.as_secs_f64(),
        frac(stages.materialize)
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"avg_candidates_per_net\": {:.2},",
        stages.candidates as f64 / nets.len() as f64
    );
    let _ = writeln!(
        json,
        "  \"avg_survivors_per_net\": {:.2},",
        stages.survivors as f64 / nets.len() as f64
    );
    let _ = writeln!(
        json,
        "  \"notes\": \"single-thread, tabulated-degree workload; the reference path is \
         the PR 1 query (materialize every candidate to score it), the v3 path scores by \
         dot product against stored cost rows and materializes survivors only. Stage \
         times come from the same measured pass as the throughput number.\""
    );
    let _ = writeln!(json, "}}");

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR2.json");
    std::fs::write(&path, &json).expect("write BENCH_PR2.json");
    eprintln!("wrote {}", path.display());
    patlabor_bench::paper_note(
        "Table II's serving claim is lookup + evaluate, never re-derivation; this \
         harness verifies the evaluate step is dot products, not tree construction",
    );
}
