//! Chaos-plane overhead guard + chaos-active soak row, written to
//! `BENCH_PR10.json` (schema `chaos-v1`) at the repository root.
//!
//! Three daemon runs over the same fixed-seed workload:
//!
//! 1. **Disarmed** — [`TransportPlane::default`], every hook
//!    short-circuits on `is_empty`. The clean-path baseline.
//! 2. **Armed-never-firing** — all five fault kinds registered at
//!    probability 0: the hooks hash and check on every frame but never
//!    inject. The gap to run 1 is the pure cost of carrying the chaos
//!    plane in production builds, and the acceptance bar holds it
//!    below 2%.
//! 3. **Chaos-active** — moderate probabilities, reconnecting clients
//!    under a seeded retry budget. Records answered / retries /
//!    reconnects / faults injected and asserts the rung ledger still
//!    balances (Σ served-by-rung == responses).
//!
//! Runs 1 and 2 alternate and take the minimum of several repetitions,
//! so one scheduler hiccup cannot fake a regression on a shared
//! machine. The overhead gate only *fails* the process when
//! `PATLABOR_MAX_CHAOS_OVERHEAD` (a percentage) is set — CI sets it;
//! local runs just report.

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::exit;
use std::time::{Duration, Instant};

use patlabor::{Engine, Net};
use patlabor_serve::{
    serve, Json, RetryPolicy, RouteClient, RouteRequest, ServeConfig, ServeSummary, TransportPlane,
};

const SEED: u64 = 0xC4A0_B347;
const CONNECTIONS: usize = 4;
const REPS: usize = 5;
const LAMBDA: u8 = 4;

fn fail(message: &str) -> ! {
    eprintln!("chaos bench: FAIL: {message}");
    exit(1);
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// All five kinds at the given probability; `p = 0` arms every hook
/// without ever firing one.
fn armed_plane(seed: u64, p: f64) -> TransportPlane {
    let mut plane = TransportPlane::seeded(seed).with_delay(Duration::from_millis(2));
    for kind in ["torn-write", "corrupt-write", "disconnect", "stall-write", "delay-read"] {
        plane = plane
            .with_spec(&format!("{kind}:{p}"))
            .unwrap_or_else(|e| fail(&format!("static spec rejected: {e}")));
    }
    plane
}

fn boot(engine: &Engine, chaos: TransportPlane) -> patlabor_serve::Server {
    serve(
        engine.clone(),
        ServeConfig {
            window: Duration::from_micros(200),
            read_stall: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            chaos,
            ..ServeConfig::default()
        },
    )
    .unwrap_or_else(|e| fail(&format!("serve failed to start: {e}")))
}

/// Clean closed-loop load (no faults expected): every request must be
/// answered `ok` on the first connection. Returns the wall time.
fn drive_clean(addr: SocketAddr, nets: &[Net]) -> Duration {
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..CONNECTIONS {
            scope.spawn(move || {
                let mut client = RouteClient::connect(addr)
                    .unwrap_or_else(|e| fail(&format!("connect failed: {e}")));
                for i in (t..nets.len()).step_by(CONNECTIONS) {
                    let request = RouteRequest {
                        id: i as u64,
                        net: nets[i].clone(),
                        deadline_ms: None,
                    };
                    let reply = client
                        .route(&request)
                        .unwrap_or_else(|e| fail(&format!("clean request {i} failed: {e}")));
                    if reply.get("ok").and_then(Json::as_bool) != Some(true) {
                        fail(&format!("clean request {i} not ok: {}", reply.render()));
                    }
                }
            });
        }
    });
    started.elapsed()
}

struct ActiveTally {
    answered: u64,
    retries: u64,
    reconnects: u64,
}

/// Chaos-active load: reconnecting clients under a seeded retry
/// budget. A dead connection is re-opened and the request replayed; an
/// `evicted` notice triggers the same. Overload past the budget skips
/// the net (terminal, not an error).
fn drive_active(addr: SocketAddr, nets: &[Net]) -> ActiveTally {
    let shards: Vec<ActiveTally> = std::thread::scope(|scope| {
        (0..CONNECTIONS)
            .map(|t| {
                scope.spawn(move || {
                    let policy = RetryPolicy::seeded(SEED ^ t as u64);
                    let mut tally = ActiveTally { answered: 0, retries: 0, reconnects: 0 };
                    let mut it = (t..nets.len()).step_by(CONNECTIONS);
                    let mut current = it.next();
                    'reconnect: while current.is_some() {
                        let Ok(mut conn) = RouteClient::connect(addr) else {
                            fail("chaos-active connect failed with the daemon still up");
                        };
                        while let Some(i) = current {
                            let request = RouteRequest {
                                id: i as u64,
                                net: nets[i].clone(),
                                deadline_ms: None,
                            };
                            match conn.route_with_retry(&request, &policy) {
                                Ok((reply, spent)) => {
                                    tally.retries += u64::from(spent);
                                    match reply.get("error").and_then(Json::as_str) {
                                        None => {
                                            if reply.get("id").and_then(Json::as_u64)
                                                != Some(request.id)
                                            {
                                                fail("accepted a reply with a mismatched id");
                                            }
                                            tally.answered += 1;
                                            current = it.next();
                                        }
                                        Some("evicted") => {
                                            tally.reconnects += 1;
                                            continue 'reconnect;
                                        }
                                        Some("overloaded") => current = it.next(),
                                        Some(other) => fail(&format!(
                                            "unexpected error vocabulary `{other}`"
                                        )),
                                    }
                                }
                                Err(_) => {
                                    tally.reconnects += 1;
                                    continue 'reconnect;
                                }
                            }
                        }
                    }
                    tally
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|w| w.join().unwrap_or_else(|_| fail("chaos-active worker panicked")))
            .collect()
    });
    let mut merged = ActiveTally { answered: 0, retries: 0, reconnects: 0 };
    for s in shards {
        merged.answered += s.answered;
        merged.retries += s.retries;
        merged.reconnects += s.reconnects;
    }
    merged
}

fn ledger_balances(summary: &ServeSummary) -> bool {
    summary.served_by.iter().sum::<u64>() == summary.responses
}

fn main() {
    let count = patlabor_bench::scaled(400, 120);
    let hardware = hardware_threads();
    eprintln!(
        "chaos bench: {count} nets (seed {SEED:#x}), λ = {LAMBDA}, \
         {CONNECTIONS} connections, {REPS} reps"
    );
    let engine =
        Engine::with_table(patlabor_lut::LutBuilder::new(LAMBDA).threads(hardware).build());
    let nets = patlabor_netgen::iccad_like_suite(SEED, count, LAMBDA as usize);

    // Warmup both shapes once so the first measured rep is not paying
    // thread spawn / allocator cold costs.
    for p in [None, Some(0.0)] {
        let server = boot(&engine, p.map_or_else(TransportPlane::default, |p| armed_plane(SEED, p)));
        drive_clean(server.addr(), &nets);
        server.shutdown();
    }

    // Alternating min-of-REPS: disarmed vs armed-at-p=0.
    let mut disarmed = Duration::MAX;
    let mut armed = Duration::MAX;
    for rep in 0..REPS {
        eprintln!("rep {} / {REPS} ...", rep + 1);
        let server = boot(&engine, TransportPlane::default());
        disarmed = disarmed.min(drive_clean(server.addr(), &nets));
        let summary = server.shutdown();
        if summary.chaos_injected != 0 {
            fail("disarmed run injected a fault");
        }
        let server = boot(&engine, armed_plane(SEED, 0.0));
        armed = armed.min(drive_clean(server.addr(), &nets));
        let summary = server.shutdown();
        if summary.chaos_injected != 0 {
            fail("armed-at-p=0 run injected a fault");
        }
        if !ledger_balances(&summary) {
            fail("rung ledger does not balance on the armed clean run");
        }
    }
    let disarmed_rps = nets.len() as f64 / disarmed.as_secs_f64().max(1e-9);
    let armed_rps = nets.len() as f64 / armed.as_secs_f64().max(1e-9);
    let overhead_pct =
        (armed.as_secs_f64() - disarmed.as_secs_f64()) / disarmed.as_secs_f64().max(1e-9) * 100.0;
    eprintln!(
        "clean path: disarmed {disarmed_rps:.0} req/s, armed-at-p=0 {armed_rps:.0} req/s, \
         overhead {overhead_pct:+.2}%"
    );

    // The chaos-active row: faults actually firing, clients retrying
    // and reconnecting, ledger still balancing.
    let server = boot(
        &engine,
        armed_plane(SEED, 0.0)
            .with_spec("torn-write:0.05")
            .and_then(|p| p.with_spec("corrupt-write:0.05"))
            .and_then(|p| p.with_spec("disconnect:0.03"))
            .and_then(|p| p.with_spec("delay-read:0.06"))
            .unwrap_or_else(|e| fail(&format!("static spec rejected: {e}"))),
    );
    let active_started = Instant::now();
    let tally = drive_active(server.addr(), &nets);
    let active_wall = active_started.elapsed();
    let summary = server.shutdown();
    if !ledger_balances(&summary) {
        fail("rung ledger does not balance under active chaos");
    }
    if summary.chaos_injected == 0 {
        fail("active run never injected a fault — the schedule is broken");
    }
    eprintln!(
        "chaos-active: {} answered, {} retries, {} reconnects, {} faults injected, \
         {} evicted",
        tally.answered, tally.retries, tally.reconnects, summary.chaos_injected, summary.evicted
    );

    // The gate: CI exports PATLABOR_MAX_CHAOS_OVERHEAD (a percentage
    // with scheduler slack); unset means report-only.
    let limit: Option<f64> = std::env::var("PATLABOR_MAX_CHAOS_OVERHEAD")
        .ok()
        .map(|s| s.parse().unwrap_or_else(|_| fail("bad PATLABOR_MAX_CHAOS_OVERHEAD")));
    let pass = limit.is_none_or(|l| overhead_pct < l);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"chaos\",");
    let _ = writeln!(json, "  \"schema\": \"chaos-v1\",");
    let _ = writeln!(json, "  \"nets\": {count},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"hardware_threads\": {hardware},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"disarmed_rps\": {disarmed_rps:.2},");
    let _ = writeln!(json, "  \"armed_p0_rps\": {armed_rps:.2},");
    let _ = writeln!(json, "  \"clean_path_overhead_pct\": {overhead_pct:.3},");
    let _ = writeln!(
        json,
        "  \"overhead_limit_pct\": {},",
        limit.map_or("null".to_string(), |l| format!("{l}"))
    );
    let _ = writeln!(json, "  \"chaos_active\": {{");
    let _ = writeln!(json, "    \"answered\": {},", tally.answered);
    let _ = writeln!(json, "    \"retries\": {},", tally.retries);
    let _ = writeln!(json, "    \"reconnects\": {},", tally.reconnects);
    let _ = writeln!(json, "    \"responses\": {},", summary.responses);
    let _ = writeln!(json, "    \"evicted\": {},", summary.evicted);
    let _ = writeln!(json, "    \"chaos_injected\": {},", summary.chaos_injected);
    let _ = writeln!(json, "    \"ledger_balanced\": true,");
    let _ = writeln!(json, "    \"wall_secs\": {:.4}", active_wall.as_secs_f64());
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"pass\": {pass},");
    let _ = writeln!(
        json,
        "  \"notes\": \"min-of-{REPS} alternating disarmed vs armed-at-p=0 runs measure the \
         clean-path cost of carrying the transport fault plane; the chaos_active block is a \
         separate run with faults firing, seeded client retry budgets, and the rung ledger \
         asserted balanced\""
    );
    let _ = writeln!(json, "}}");

    // crates/bench → repository root.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR10.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| fail(&format!("write BENCH_PR10.json: {e}")));
    eprintln!("wrote {}", path.display());
    print!("{json}");
    if !pass {
        let limit = limit.unwrap_or(f64::NAN);
        fail(&format!("clean-path overhead {overhead_pct:+.2}% exceeds the {limit}% gate"));
    }
}
