//! Theorem 2: smoothed analysis of frontier sizes.
//!
//! Perturbing an adversarial instance (the Theorem-1 gadget chain) with
//! κ-smoothed noise must collapse its frontier toward the typical
//! polynomial (here: near-constant) size, with the effect strengthening as
//! κ decreases (more noise). We also report E[|F|] for uniform random
//! instances against the paper's `O(n³κ)` bound.

use patlabor_bench::{paper_note, render_table, scaled};
use patlabor_dw::{numeric::pareto_frontier, DwConfig};
use rand::SeedableRng;

fn main() {
    let trials = scaled(25, 5);
    println!("Theorem 2 — smoothed frontier sizes ({trials} trials/kappa)\n");

    // Adversarial base: 3 chained gadgets (degree 10), scaled up so the
    // perturbation resolution is meaningful.
    let base = patlabor_netgen::exponential_frontier_net(3)
        .map_points(|p| patlabor_geom::Point::new(p.x * 100, p.y * 100));
    let resolution = 8_000i64; // ≈ the instance span
    let worst = pareto_frontier(&base, &DwConfig::default()).len();
    println!("adversarial base: degree {}, |F| = {worst}\n", base.degree());

    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5007);
    let mut rows = Vec::new();
    for kappa in [1000.0f64, 100.0, 30.0, 10.0, 3.0] {
        let mut total = 0usize;
        let mut max = 0usize;
        for _ in 0..trials {
            let net =
                patlabor_netgen::smoothed_perturbation(&mut rng, &base, kappa, resolution);
            let f = pareto_frontier(&net, &DwConfig::default());
            total += f.len();
            max = max.max(f.len());
        }
        rows.push(vec![
            format!("{kappa:.0}"),
            format!("{:.2}", total as f64 / trials as f64),
            max.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["kappa", "E[|F|]", "max |F|"], &rows)
    );

    // Average-case reference: uniform random nets per degree.
    println!("\nuniform random instances (average case, kappa = 1):");
    let mut rows = Vec::new();
    for degree in [6usize, 8, 10] {
        let mut total = 0usize;
        for _ in 0..trials {
            let net = patlabor_netgen::uniform_net(&mut rng, degree, 10_000);
            total += pareto_frontier(&net, &DwConfig::default()).len();
        }
        rows.push(vec![
            degree.to_string(),
            format!("{:.2}", total as f64 / trials as f64),
            format!("{}", degree.pow(3)),
        ]);
    }
    println!(
        "{}",
        render_table(&["degree", "E[|F|]", "n^3 bound (kappa=1)"], &rows)
    );
    paper_note(
        "paper Thm 2: E[|F|] = O(n^3 * kappa) for kappa-smoothed instances — \
         polynomial, explaining why Pareto-DW is fast in practice. Expect E[|F|] to \
         stay small (single digits) at every kappa and to sit orders of magnitude \
         below the n^3 bound; our DP-verifiable adversarial base (|F| = 3) is mild, \
         so perturbation randomizes it rather than collapsing it — the paper's \
         exponential construction would show the collapse more dramatically.",
    );
}
