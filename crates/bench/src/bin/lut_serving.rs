//! v4 zero-copy serving: open-to-ready latency of `open_mmap` vs the
//! owned full parse, and single-thread query throughput of the
//! vectorized kernels against the recorded v3 number — written to
//! `BENCH_PR6.json` at the repository root.
//!
//! Three claims are measured, all on the BENCH_PR2 workload (same seed,
//! same degree/span mix, same λ = 6 table):
//!
//! 1. **Open-to-ready**: a mapped table is ready after one striped
//!    checksum scan plus structural validation of borrowed slices; the
//!    owned path streams, hashes, copies and re-validates every element.
//!    The bench times both from file path to answerable table.
//! 2. **Query throughput**: the Eytzinger key index, the chunked integer
//!    dot kernel and the scratch-reusing materializer against the
//!    recorded v3 single-thread number (291 654 nets/s, BENCH_PR2.json
//!    as committed by PR 2), with the lookup/score/materialize stage
//!    split taken from the same measured pass.
//! 3. **Backing parity**: before anything is timed, every net's frontier
//!    is asserted identical between the owned and mapped tables — the
//!    numbers are only comparable because the answers are.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use patlabor_lut::{Backing, LookupTable, LutBuilder};
use patlabor_netgen::uniform_net;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 0x5eed_0bec;
const LAMBDA: u8 = 6;
/// Single-thread dot-product throughput recorded in BENCH_PR2.json by
/// the v3 kernel PR on this class of hardware — the bar the vectorized
/// kernels are measured against.
const V3_BASELINE_NETS_PER_SEC: f64 = 291_654.18;

fn workload(count: usize) -> Vec<patlabor_geom::Net> {
    let mut rng = StdRng::seed_from_u64(SEED);
    (0..count)
        .map(|i| {
            let degree = rng.gen_range(3..=LAMBDA as usize);
            let span = if i % 2 == 0 { 24 } else { 10_000 };
            uniform_net(&mut rng, degree, span)
        })
        .collect()
}

/// Best-of-N open-to-ready latency. Minimum, not mean: open latency is a
/// cold-start metric and the minimum is the reproducible floor once the
/// file is in page cache (which is exactly the serving scenario — the
/// table file stays resident across process restarts).
fn open_latency<T>(reps: usize, open: impl Fn() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let table = open();
        let elapsed = start.elapsed();
        std::hint::black_box(&table);
        best = best.min(elapsed);
    }
    best
}

struct Staged {
    nps: f64,
    lookup: Duration,
    score: Duration,
    materialize: Duration,
}

/// One measured pass: throughput from the loop's own clock, stage split
/// accumulated inside it (same structure as the lut_query bench).
fn measure_staged(table: &LookupTable, nets: &[patlabor_geom::Net]) -> Staged {
    let (mut lookup, mut score, mut materialize) =
        (Duration::ZERO, Duration::ZERO, Duration::ZERO);
    let start = Instant::now();
    for net in nets {
        let t0 = Instant::now();
        let class = table.classify(net).expect("tabulated degree");
        let ids = table.candidate_ids(&class).expect("tabulated pattern");
        let t1 = Instant::now();
        let frontier = table.score_candidates(&class, ids);
        let t2 = Instant::now();
        for &(_, id) in &frontier {
            std::hint::black_box(table.materialize(net, &class, id));
        }
        let t3 = Instant::now();
        lookup += t1 - t0;
        score += t2 - t1;
        materialize += t3 - t2;
    }
    Staged {
        nps: nets.len() as f64 / start.elapsed().as_secs_f64(),
        lookup,
        score,
        materialize,
    }
}

fn main() {
    let count = patlabor_bench::scaled(50_000, 500);
    let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!("generating {count} tabulated nets (degrees 3..={LAMBDA}, seed {SEED:#x}) ...");
    let nets = workload(count);
    eprintln!("building lambda={LAMBDA} tables ...");
    let table = LutBuilder::new(LAMBDA).build();

    let dir = std::env::temp_dir().join("patlabor_bench_serving");
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let path = dir.join(format!("lut_serving_{}.plut", std::process::id()));
    table.save(&path).expect("save v4 table");
    let file_bytes = std::fs::metadata(&path).expect("stat table file").len();

    // Parity gate: the mapped table must answer every workload net
    // identically to the owned one (witness trees included) before any
    // throughput comparison is meaningful.
    eprintln!("mmap-vs-owned parity check over {} nets ...", nets.len());
    let mapped = LookupTable::open_mmap(&path).expect("open v4 table zero-copy");
    assert_eq!(mapped.backing(), Backing::Mapped);
    for net in &nets {
        let owned_frontier = table.query(net).expect("tabulated degree");
        let mapped_frontier = mapped.query(net).expect("tabulated degree");
        assert_eq!(
            owned_frontier,
            mapped_frontier,
            "mapped table diverged from owned on {:?}",
            net.pins()
        );
    }
    drop(mapped);

    let reps = 20;
    eprintln!("open-to-ready: owned full parse x{reps} ...");
    let owned_open = open_latency(reps, || {
        LookupTable::load(&path).expect("owned load")
    });
    eprintln!("open-to-ready: zero-copy mmap x{reps} ...");
    let mmap_open = open_latency(reps, || {
        LookupTable::open_mmap(&path).expect("mmap open")
    });
    let open_speedup = owned_open.as_secs_f64() / mmap_open.as_secs_f64();

    // Throughput is measured on the mapped table — the serving
    // configuration — plus the owned table as a cross-check that the
    // backing costs nothing at query time.
    let mapped = LookupTable::open_mmap(&path).expect("mmap open");
    eprintln!("staged query pass (mapped backing) ...");
    let staged = measure_staged(&mapped, &nets);
    eprintln!("staged query pass (owned backing) ...");
    let owned_staged = measure_staged(&table, &nets);
    let total = (staged.lookup + staged.score + staged.materialize).as_secs_f64();
    let frac = |d: Duration| d.as_secs_f64() / total;
    let speedup_vs_v3 = staged.nps / V3_BASELINE_NETS_PER_SEC;

    std::fs::remove_file(&path).ok();

    println!(
        "{}",
        patlabor_bench::render_table(
            &["metric", "owned", "mmap", "ratio"],
            &[
                vec![
                    "open-to-ready".into(),
                    format!("{:.3} ms", owned_open.as_secs_f64() * 1e3),
                    format!("{:.3} ms", mmap_open.as_secs_f64() * 1e3),
                    format!("{open_speedup:.1}x faster"),
                ],
                vec![
                    "query nets/s".into(),
                    format!("{:.0}", owned_staged.nps),
                    format!("{:.0}", staged.nps),
                    format!("{speedup_vs_v3:.2}x vs v3 record"),
                ],
            ],
        )
    );
    println!(
        "stages (mapped pass): lookup {:.1}%, score {:.1}%, materialize {:.1}%",
        100.0 * frac(staged.lookup),
        100.0 * frac(staged.score),
        100.0 * frac(staged.materialize),
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"lut_serving_v4\",");
    let _ = writeln!(json, "  \"nets\": {count},");
    let _ = writeln!(json, "  \"lambda\": {LAMBDA},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"hardware_threads\": {hardware},");
    let _ = writeln!(json, "  \"threads\": 1,");
    let _ = writeln!(json, "  \"table_file_bytes\": {file_bytes},");
    let _ = writeln!(json, "  \"open_to_ready\": {{");
    let _ = writeln!(
        json,
        "    \"owned_full_parse_secs\": {:.9},",
        owned_open.as_secs_f64()
    );
    let _ = writeln!(
        json,
        "    \"mmap_zero_copy_secs\": {:.9},",
        mmap_open.as_secs_f64()
    );
    let _ = writeln!(json, "    \"mmap_speedup\": {open_speedup:.2}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"query_single_thread\": {{");
    let _ = writeln!(
        json,
        "    \"v3_baseline_nets_per_sec\": {V3_BASELINE_NETS_PER_SEC:.2},"
    );
    let _ = writeln!(
        json,
        "    \"mmap_backed_nets_per_sec\": {:.2},",
        staged.nps
    );
    let _ = writeln!(
        json,
        "    \"owned_backed_nets_per_sec\": {:.2},",
        owned_staged.nps
    );
    let _ = writeln!(json, "    \"speedup_vs_v3\": {speedup_vs_v3:.4},");
    let _ = writeln!(json, "    \"stages\": {{");
    let _ = writeln!(
        json,
        "      \"lookup_secs\": {:.6}, \"lookup_frac\": {:.4},",
        staged.lookup.as_secs_f64(),
        frac(staged.lookup)
    );
    let _ = writeln!(
        json,
        "      \"score_secs\": {:.6}, \"score_frac\": {:.4},",
        staged.score.as_secs_f64(),
        frac(staged.score)
    );
    let _ = writeln!(
        json,
        "      \"materialize_secs\": {:.6}, \"materialize_frac\": {:.4}",
        staged.materialize.as_secs_f64(),
        frac(staged.materialize)
    );
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"parity\": \"owned and mmap frontiers asserted identical on every workload net before timing\",");
    let _ = writeln!(
        json,
        "  \"notes\": \"open-to-ready is best-of-{reps} with the file page-cache warm; the \
         owned path is the streaming element-wise parse (v3-style full load of the same v4 \
         file), the mmap path validates the striped checksum and structure once and borrows \
         the CSR arenas in place. Query stage times come from the same measured pass as the \
         throughput number.\""
    );
    let _ = writeln!(json, "}}");

    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR6.json");
    std::fs::write(&out, &json).expect("write BENCH_PR6.json");
    eprintln!("wrote {}", out.display());
    patlabor_bench::paper_note(
        "serving tables from a shared read-only mapping makes the lookup structure a \
         commodity artifact: build once, checksum-validate at open, serve from page cache",
    );
}
