//! §V-B policy training: reproduces the reinforcement-style fitting of the
//! pin-selection weights α and reports how the learned policy compares
//! against random and default selection on held-out nets.

use patlabor::policy::{train::TrainConfig, Policy};
use patlabor::{LutBuilder, PatLabor};
use patlabor_bench::{paper_note, render_table, scaled};
use patlabor_pareto::metrics::hypervolume;
use patlabor_pareto::Cost;
use rand::SeedableRng;

fn main() {
    let degrees: Vec<usize> = vec![10, 14, 20, 30];
    let config = TrainConfig {
        instances_per_degree: scaled(10, 3),
        rollouts_per_instance: scaled(16, 6),
        ..TrainConfig::default()
    };
    println!(
        "policy iteration over degrees {degrees:?} \
         ({} instances x {} rollouts each)\n",
        config.instances_per_degree, config.rollouts_per_instance
    );
    let learned = patlabor::policy::train::train(&degrees, 5, &config);

    let mut rows = Vec::new();
    for &d in &degrees {
        let a = learned.alphas(d);
        rows.push(vec![
            d.to_string(),
            format!("{:.3}", a[0]),
            format!("{:.3}", a[1]),
            format!("{:.3}", a[2]),
            format!("{:.3}", a[3]),
        ]);
    }
    println!(
        "{}",
        render_table(&["degree", "a1 (|r-p|)", "a2 (dist_T)", "a3 (min-sel)", "a4 (HPWL)"], &rows)
    );

    // Held-out evaluation: average frontier hypervolume when the router
    // uses the learned policy vs. the shipped default.
    let table = LutBuilder::new(5).build();
    let eval_nets = scaled(20, 5);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x9e1d);
    let mut hv = [0i128; 2];
    for _ in 0..eval_nets {
        let net = patlabor_netgen::clustered_net(&mut rng, 18, 2_000, 2);
        let seed = patlabor_baselines::rsmt::rsmt_tree(&net);
        let (w0, d0) = seed.objectives();
        let reference = Cost::new(w0 * 2, d0 * 2);
        for (i, policy) in [learned.clone(), Policy::default()].into_iter().enumerate() {
            let router = PatLabor::with_table(table.clone()).with_policy(policy);
            let frontier = router.route_frontier(&net);
            hv[i] += hypervolume(&frontier, reference);
        }
    }
    println!("held-out hypervolume ({eval_nets} degree-18 nets, higher is better):");
    println!("  learned policy: {}", hv[0]);
    println!("  default policy: {}", hv[1]);
    println!(
        "  learned/default: {:.4}",
        hv[0] as f64 / hv[1].max(1) as f64
    );
    paper_note(
        "paper §V-B trains alpha per degree (10..100) by policy iteration with \
         curriculum warm starts; Theorem 5 bounds the generalization gap by \
         O~(sqrt(n/m)). Expect non-negative learned weights with the source-distance \
         and tree-distance terms dominant, and held-out quality within a few percent \
         of (or better than) the shipped default.",
    );
}
