//! Ablations of PatLabor's design choices on large-degree nets:
//!
//! * local search vs. the theoretical Pareto-KS (§IV-B vs §V-B);
//! * SALT-style refinement on/off;
//! * arborescence seeding on/off (our λ-calibration, DESIGN.md §4);
//! * pin-selection policy: trained score vs. farthest-first vs. the
//!   number of reroute rounds.
//!
//! Quality is the clamp-free approximation factor against the union of
//! every variant's output (1.0 = matched or dominated everything).

use std::time::Instant;

use patlabor::local_search::{local_search, LocalSearchConfig};
use patlabor::policy::Policy;
use patlabor::{ks::pareto_ks, LutBuilder, ParetoSet, RoutingTree};
use patlabor_bench::{paper_note, render_table, scaled};
use patlabor_pareto::metrics::approximation_factor;

fn main() {
    let net_count = scaled(40, 8);
    println!("PatLabor design ablations ({net_count} large-degree nets)\n");
    let table = LutBuilder::new(5).build();
    let policy = Policy::default();
    let farthest_only = Policy::uniform([1.0, 1.0, 0.0, 0.0]); // no locality terms

    let nets: Vec<_> = patlabor_netgen::iccad_like_suite(0xab1a, net_count * 10, 40)
        .into_iter()
        .filter(|n| n.degree() > 9)
        .take(net_count)
        .collect();

    type Variant = (&'static str, Box<dyn Fn(&patlabor::Net) -> ParetoSet<RoutingTree>>);
    let variants: Vec<Variant> = vec![
        (
            "default",
            Box::new({
                let table = table.clone();
                let policy = policy.clone();
                move |n| local_search(n, &table, &policy, &LocalSearchConfig::default())
            }),
        ),
        (
            "no refinement",
            Box::new({
                let table = table.clone();
                let policy = policy.clone();
                move |n| {
                    local_search(
                        n,
                        &table,
                        &policy,
                        &LocalSearchConfig {
                            refine: false,
                            ..LocalSearchConfig::default()
                        },
                    )
                }
            }),
        ),
        (
            "no arborescence seed",
            Box::new({
                let table = table.clone();
                let policy = policy.clone();
                move |n| {
                    local_search(
                        n,
                        &table,
                        &policy,
                        &LocalSearchConfig {
                            seed_arborescence: false,
                            ..LocalSearchConfig::default()
                        },
                    )
                }
            }),
        ),
        (
            "no locality in policy",
            Box::new({
                let table = table.clone();
                move |n| {
                    local_search(n, &table, &farthest_only, &LocalSearchConfig::default())
                }
            }),
        ),
        (
            "3x rounds",
            Box::new({
                let table = table.clone();
                let policy = policy.clone();
                move |n| {
                    local_search(
                        n,
                        &table,
                        &policy,
                        &LocalSearchConfig {
                            rounds: Some(3 * (n.degree() / 5).max(1)),
                            ..LocalSearchConfig::default()
                        },
                    )
                }
            }),
        ),
        (
            "Pareto-KS (theory)",
            Box::new({
                let table = table.clone();
                move |n| pareto_ks(n, &table)
            }),
        ),
    ];

    // Run everything, build per-net union references, score variants.
    let mut outputs: Vec<Vec<ParetoSet<RoutingTree>>> = Vec::new();
    let mut times = vec![0.0f64; variants.len()];
    for (vi, (_, run)) in variants.iter().enumerate() {
        let start = Instant::now();
        outputs.push(nets.iter().map(run).collect());
        times[vi] = start.elapsed().as_secs_f64();
    }
    let mut factors = vec![0.0f64; variants.len()];
    for ni in 0..nets.len() {
        let mut union: ParetoSet<()> = ParetoSet::new();
        for out in &outputs {
            for c in out[ni].costs() {
                union.insert(c, ());
            }
        }
        for (vi, out) in outputs.iter().enumerate() {
            let produced: ParetoSet<()> = out[ni].costs().map(|c| (c, ())).collect();
            factors[vi] += approximation_factor(&produced, &union);
        }
    }

    let mut rows = Vec::new();
    for (vi, (name, _)) in variants.iter().enumerate() {
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", factors[vi] / nets.len() as f64),
            format!("{:.2}s", times[vi]),
        ]);
    }
    println!(
        "{}",
        render_table(&["variant", "avg approx factor", "total time"], &rows)
    );
    paper_note(
        "not a paper table — ablation of this implementation's design choices. \
         Expected shape: the default sits at/near the best factor; dropping \
         refinement or the arborescence seed hurts; Pareto-KS (the paper's own \
         theory-only §IV-B algorithm) is clearly weaker than the §V-B local \
         search, which is exactly why the paper builds the practical method.",
    );
}
