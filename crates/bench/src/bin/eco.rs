//! The ECO rerouting bench: what does the delta API buy over routing an
//! edited design from scratch? Writes `BENCH_PR9.json` at the
//! repository root in the shared `scaling-v1` schema
//! ([`patlabor_bench::scaling`]), with the eco rows spliced into the
//! report the same way the loadgen bench splices its serve rows.
//!
//! The regime under test is the one an engineering change order lives
//! in: a design of N routed nets, of which a small fraction moves. The
//! **reuse** level r ∈ {0.5, 0.9, 0.99} is the untouched fraction —
//! N·(1−r) nets receive one edit each (three quarters class-preserving
//! rigid translates, one quarter class-breaking far pin moves). Per
//! level and thread count:
//!
//! * **fresh** — route all N nets of the edited design on a cold
//!   engine (`route_batch`): a tool without a delta API cannot know
//!   which routes survived the edit, so it pays for the whole design;
//! * **delta** — reroute only the edited nets through
//!   [`Engine::route_batch_deltas`] against the warm engine that routed
//!   the base design; untouched nets keep their prior outcomes at zero
//!   cost, class-preserving edits replay cached winner ids without
//!   scoring a LUT candidate, class-breaking edits fall through the
//!   ordinary ladder.
//!
//! Throughput is **design nets per second** (N over elapsed) on both
//! sides, so the two numbers answer the same question: how fast is the
//! design's routing state valid again? Every delta frontier is checked
//! identical to its fresh counterpart before any number is reported,
//! and the measured replay fraction (provenance `Reused` over the
//! edited slots) is recorded so a drifting edit generator cannot
//! silently skew the curve.
//!
//! CI gate: set `PATLABOR_MIN_ECO_SPEEDUP` (e.g. `3.0`) to make the
//! bench exit nonzero when the serial delta-vs-fresh ratio at reuse
//! 0.99 falls below the floor.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use patlabor::pipeline::RouteSource;
use patlabor::{DeltaJob, DeltaKind, Engine, Net, NetDelta, Point, Session};

const SEED: u64 = 0xec0_ba5e;
const REUSE_LEVELS: [f64; 3] = [0.5, 0.9, 0.99];
const LAMBDA: u8 = 5;

struct EcoRow {
    reuse_target: f64,
    threads: usize,
    design_nets: usize,
    edits: usize,
    replayed: usize,
    fresh_nets_per_sec: f64,
    delta_nets_per_sec: f64,
    delta_vs_fresh: f64,
}

impl EcoRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"reuse_target\": {:.2}, \"threads\": {}, \"design_nets\": {}, \
             \"edits\": {}, \"replayed\": {}, \"fresh_nets_per_sec\": {:.2}, \
             \"delta_nets_per_sec\": {:.2}, \"delta_vs_fresh\": {:.4}}}",
            self.reuse_target,
            self.threads,
            self.design_nets,
            self.edits,
            self.replayed,
            self.fresh_nets_per_sec,
            self.delta_nets_per_sec,
            self.delta_vs_fresh,
        )
    }
}

/// The edited slots at reuse level `reuse`, spread evenly over the
/// design: every edited net gets one edit — a class-preserving rigid
/// translate, except every fourth edit, which moves the last pin far
/// enough to break the congruence class (same degree, so the fresh
/// route stays table-backed).
fn edits_at(bases: &[Net], reuse: f64) -> Vec<(usize, DeltaJob)> {
    let count = bases.len();
    let edits = (((1.0 - reuse) * count as f64).round() as usize).max(1);
    let stride = count / edits;
    (0..edits)
        .map(|e| {
            let slot = e * stride;
            let net = &bases[slot];
            let kind = if e % 4 == 3 {
                let last = net.pins().len() - 1;
                let p = net.pins()[last];
                DeltaKind::MovePin {
                    index: last,
                    to: Point::new(p.x + 997, p.y + 1409),
                }
            } else {
                DeltaKind::Translate { dx: 7, dy: -3 }
            };
            (
                slot,
                DeltaJob {
                    delta: NetDelta::new(net.clone(), kind),
                    prior_edits: 0,
                    session: Session::default(),
                },
            )
        })
        .collect()
}

fn main() {
    let count = patlabor_bench::scaled(20_000, 500);
    let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!("generating {count} base nets (seed {SEED:#x}), hardware threads = {hardware} ...");
    let table = patlabor_lut::LutBuilder::new(LAMBDA).build();
    // Replayable degrees only: ECO reuse is a statement about
    // table-backed congruence classes, so out-of-λ nets (local search)
    // would only dilute the measurement.
    let bases: Vec<Net> = patlabor_bench::mixed_workload(count * 3, SEED)
        .into_iter()
        .filter(|n| (3..=LAMBDA as usize).contains(&n.degree()))
        .take(count)
        .collect();
    let count = bases.len();

    let mut eco_rows: Vec<EcoRow> = Vec::new();
    let mut deterministic = true;
    let mut serial_fresh_nps = 0.0;
    for reuse in REUSE_LEVELS {
        let edits = edits_at(&bases, reuse);
        let mut mutated_design = bases.clone();
        for (slot, job) in &edits {
            mutated_design[*slot] = job.delta.apply();
        }
        let jobs: Vec<DeltaJob> = edits.iter().map(|(_, j)| j.clone()).collect();
        let thread_counts = if hardware > 1 { vec![1, hardware] } else { vec![1] };
        for threads in thread_counts {
            // Fresh side: a cold engine routing the whole edited design —
            // without a delta API there is no way to know which of the
            // N routes the edit invalidated.
            let fresh_engine = Engine::with_table(table.clone());
            let start = Instant::now();
            let fresh = fresh_engine.route_batch(&mutated_design, threads);
            let fresh_nps = count as f64 / start.elapsed().as_secs_f64();

            // Delta side: a fresh warm engine per run (the base design
            // routes untimed) so no measurement inherits classes a
            // previous run inserted; only the edited nets are retimed.
            let warm = Engine::with_table(table.clone());
            warm.route_batch(&bases, hardware);
            let start = Instant::now();
            let (delta, _) = warm.route_batch_deltas(&jobs, threads);
            let delta_nps = count as f64 / start.elapsed().as_secs_f64();

            let replayed = delta
                .iter()
                .filter(|r| {
                    matches!(
                        r.as_ref().map(|o| o.provenance.source),
                        Ok(RouteSource::Reused { .. })
                    )
                })
                .count();
            for ((slot, _), d) in edits.iter().zip(&delta) {
                let same = match (d, &fresh[*slot]) {
                    (Ok(d), Ok(f)) => d.frontier == f.frontier,
                    (Err(d), Err(f)) => d == f,
                    _ => false,
                };
                if !same {
                    deterministic = false;
                    eprintln!(
                        "ERROR: reuse {reuse}, threads {threads}: \
                         delta for design net {slot} diverged from the fresh route"
                    );
                }
            }
            if threads == 1 && (reuse - 0.99).abs() < f64::EPSILON {
                serial_fresh_nps = fresh_nps;
            }
            eprintln!(
                "reuse {reuse:.2}, threads {threads}: {} edits, fresh {fresh_nps:.0} nets/s, \
                 delta {delta_nps:.0} nets/s ({:.1}x), {replayed} replayed",
                jobs.len(),
                delta_nps / fresh_nps,
            );
            eco_rows.push(EcoRow {
                reuse_target: reuse,
                threads,
                design_nets: count,
                edits: jobs.len(),
                replayed,
                fresh_nets_per_sec: fresh_nps,
                delta_nets_per_sec: delta_nps,
                delta_vs_fresh: delta_nps / fresh_nps,
            });
        }
    }

    println!(
        "{}",
        patlabor_bench::render_table(
            &["reuse", "threads", "edits", "fresh nets/s", "delta nets/s", "delta/fresh", "replayed"],
            &eco_rows
                .iter()
                .map(|r| {
                    vec![
                        format!("{:.2}", r.reuse_target),
                        r.threads.to_string(),
                        r.edits.to_string(),
                        format!("{:.0}", r.fresh_nets_per_sec),
                        format!("{:.0}", r.delta_nets_per_sec),
                        format!("{:.1}x", r.delta_vs_fresh),
                        r.replayed.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    );
    println!("deterministic vs fresh: {deterministic}");

    let headline = eco_rows
        .iter()
        .find(|r| (r.reuse_target - 0.99).abs() < f64::EPSILON && r.threads == 1)
        .expect("reuse 0.99 serial row is always measured");
    let headline_ratio = headline.delta_vs_fresh;

    let mut extra = String::new();
    let _ = writeln!(
        extra,
        "  \"headline\": {{\"reuse_099_serial_delta_vs_fresh\": {headline_ratio:.4}, \
         \"reuse_099_edits\": {}, \"reuse_099_replayed\": {}}},",
        headline.edits, headline.replayed
    );
    let _ = writeln!(extra, "  \"deterministic_vs_fresh\": {deterministic},");
    let _ = writeln!(extra, "  \"eco_runs\": [");
    for (i, row) in eco_rows.iter().enumerate() {
        let comma = if i + 1 < eco_rows.len() { "," } else { "" };
        let _ = writeln!(extra, "    {}{comma}", row.to_json());
    }
    let _ = writeln!(extra, "  ],");

    let json = patlabor_bench::scaling::render_report(
        &patlabor_bench::scaling::ReportHeader {
            bench: "eco_reroute",
            nets: count,
            seed: SEED,
            hardware_threads: hardware,
            serial_nets_per_sec: serial_fresh_nps,
        },
        &[],
        &extra,
        "eco_runs compare refreshing an edited design's routing state through \
         route_batch_deltas (edited nets only; untouched nets keep their routes) \
         against a cold-engine route of the whole design. reuse_target is the \
         untouched design fraction; replayed counts edited slots whose provenance \
         came back Reused (class-preserving edits served from cached winner ids). \
         Both throughputs are design nets per second. serial_nets_per_sec is the \
         fresh serial baseline at reuse 0.99. Every delta frontier is checked \
         identical to its fresh counterpart.",
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR9.json");
    std::fs::write(&path, &json).expect("write BENCH_PR9.json");
    eprintln!("wrote {}", path.display());

    if !deterministic {
        eprintln!("FAIL: delta rerouting diverged from the fresh routes");
        std::process::exit(1);
    }

    if let Ok(floor) = std::env::var("PATLABOR_MIN_ECO_SPEEDUP") {
        let floor: f64 = floor.parse().expect("PATLABOR_MIN_ECO_SPEEDUP must be a float");
        println!(
            "eco gate: {headline_ratio:.2}x delta-vs-fresh at reuse 0.99 (floor {floor:.2}x)"
        );
        if headline_ratio < floor {
            eprintln!(
                "FAIL: delta-vs-fresh {headline_ratio:.2}x at reuse 0.99 is below \
                 the {floor:.2}x floor"
            );
            std::process::exit(1);
        }
    }

    patlabor_bench::paper_note(
        "the paper routes each design once; this bench measures the incremental \
         regime an ECO flow lives in — most of the design is untouched, and the \
         delta API retimes only what moved while replaying cached winners for \
         class-preserving edits",
    );
}
