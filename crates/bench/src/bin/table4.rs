//! Table IV: total number of Pareto-optimal solutions found per method.
//!
//! For every net the true frontier is computed exactly; a method scores a
//! point for every frontier solution whose `(w, d)` pair its output
//! contains. PatLabor recovers all of them by construction.

use patlabor::{PatLabor, RouterConfig};
use patlabor_bench::{paper_note, render_table, scaled, small_degree_comparison, Method};

fn main() {
    let nets_per_degree = scaled(150, 20);
    let lambda: u8 = std::env::var("PATLABOR_SMALL_LAMBDA")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|l| (4..=7).contains(l))
        .unwrap_or(6);
    println!(
        "Table IV — Pareto-optimal solutions found, degrees 4..={lambda} \
         ({nets_per_degree} nets/degree)\n"
    );

    let router = PatLabor::with_config(RouterConfig {
        lambda,
        ..RouterConfig::default()
    });
    let (stats, _) =
        small_degree_comparison(&router, 4..=lambda as usize, nets_per_degree, 0x7ab1e4);

    let mut rows = Vec::new();
    let mut frontier_total = 0usize;
    let mut found_total = [0usize; 4];
    for (degree, s) in &stats {
        frontier_total += s.frontier_total;
        let mut row = vec![degree.to_string(), s.frontier_total.to_string()];
        for (mi, _) in Method::ALL.iter().enumerate() {
            found_total[mi] += s.found[mi];
            row.push(s.found[mi].to_string());
        }
        rows.push(row);
    }
    let mut ratio_row = vec!["Total ratio".to_string(), "1.000".to_string()];
    for f in found_total {
        ratio_row.push(format!("{:.3}", f as f64 / frontier_total.max(1) as f64));
    }
    rows.push(ratio_row);

    let headers: Vec<&str> = ["n", "frontier"]
        .into_iter()
        .chain(Method::ALL.iter().map(|m| m.name()))
        .collect();
    println!("{}", render_table(&headers, &rows));
    paper_note(
        "paper Table IV (1,126,519 frontier solutions): PatLabor finds all (ratio 1.0), \
         YSD 0.898, SALT 0.893, with the gap widening with degree (at n = 9 YSD misses \
         60,382 of 132,487). Expect PatLabor ratio exactly 1.0 and the baselines \
         strictly below, decreasing with degree.",
    );
}
