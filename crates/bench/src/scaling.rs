//! Shared schema for the parallel-scaling benches.
//!
//! `BENCH_PR1.json` (`bin/throughput.rs`) and `BENCH_PR7.json`
//! (`bin/scaling.rs`) report the same kind of measurement — the batch
//! driver swept across thread counts — so they share one row type and
//! one JSON layout. The schema's load-bearing rule: **oversubscribed
//! rows are structurally separated**. A run with more worker threads
//! than hardware threads measures scheduler time-slicing, not scaling,
//! so it lives in a distinct `oversubscribed_runs` array that no
//! consumer can mistake for the scaling curve — the separation is a
//! field, not a prose caveat.

use std::fmt::Write as _;

/// One measured batch-routing run at a fixed thread count.
///
/// The first five fields are the common core both benches fill; the
/// `Option` telemetry (worker utilization, steal counts, lock
/// contention) is recorded by `scaling.rs`, which routes through
/// `route_batch_with_stats`, and omitted from rows produced by the
/// plain throughput bench. `None` fields are absent from the JSON
/// rather than zero-filled, so "not measured" and "measured zero"
/// stay distinguishable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScalingRun {
    /// Worker threads requested.
    pub threads: usize,
    /// Frontier cache enabled.
    pub cache: bool,
    /// Nets routed per wall-clock second.
    pub nets_per_sec: f64,
    /// Aggregate cache hit rate (0 when the cache is off).
    pub cache_hit_rate: f64,
    /// Throughput relative to the serial cache-off baseline.
    pub speedup_vs_serial: f64,
    /// Mean worker utilization: Σ busy-ns / (elapsed × workers).
    pub utilization: Option<f64>,
    /// The least-utilized worker's busy fraction (a load-balance floor).
    pub min_worker_utilization: Option<f64>,
    /// Successful interval steals across all workers.
    pub steals: Option<u64>,
    /// Lost steal races across all workers.
    pub failed_steals: Option<u64>,
    /// Cache read-lock acquisitions that found the shard lock held.
    pub contended_reads: Option<u64>,
    /// Cache write-lock acquisitions that found the shard lock held.
    pub contended_writes: Option<u64>,
}

impl ScalingRun {
    /// Whether this run used more workers than the machine has hardware
    /// threads.
    pub fn oversubscribed(&self, hardware_threads: usize) -> bool {
        self.threads > hardware_threads
    }

    /// The row as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"threads\": {}, \"cache\": {}, \"nets_per_sec\": {:.2}, \
             \"cache_hit_rate\": {:.4}, \"speedup_vs_serial\": {:.4}",
            self.threads, self.cache, self.nets_per_sec, self.cache_hit_rate, self.speedup_vs_serial
        );
        if let Some(u) = self.utilization {
            let _ = write!(s, ", \"utilization\": {u:.4}");
        }
        if let Some(u) = self.min_worker_utilization {
            let _ = write!(s, ", \"min_worker_utilization\": {u:.4}");
        }
        if let Some(n) = self.steals {
            let _ = write!(s, ", \"steals\": {n}");
        }
        if let Some(n) = self.failed_steals {
            let _ = write!(s, ", \"failed_steals\": {n}");
        }
        if let Some(n) = self.contended_reads {
            let _ = write!(s, ", \"contended_reads\": {n}");
        }
        if let Some(n) = self.contended_writes {
            let _ = write!(s, ", \"contended_writes\": {n}");
        }
        s.push('}');
        s
    }
}

/// Renders a JSON array of rows at the given indent.
fn rows_json(rows: &[&ScalingRun], indent: &str) -> String {
    if rows.is_empty() {
        return "[]".to_string();
    }
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(s, "{indent}  {}{comma}", r.to_json());
    }
    let _ = write!(s, "{indent}]");
    s
}

/// One measured serving run at a fixed coalescing window — the serve
/// bench's (`bin/loadgen.rs`, `BENCH_PR8.json`) row type. It rides the
/// same `scaling-v1` report as [`ScalingRun`]: loadgen reports its
/// serve rows through [`render_report`]'s `extra` splice (rendered by
/// [`serve_rows_json`]) so the preamble, schema tag, and notes field
/// stay byte-compatible with the batch benches.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeRun {
    /// The coalescing window the daemon accumulated under, µs.
    pub window_us: u64,
    /// Closed-loop client connections driving the daemon.
    pub connections: usize,
    /// Requests sent (valid route requests only).
    pub requests: usize,
    /// Replies with `ok: true`.
    pub ok: u64,
    /// Ok replies that were served degraded (a lower rung answered).
    pub degraded: u64,
    /// Admission-control rejections (`"overloaded"`).
    pub rejected: u64,
    /// Completed requests per wall-clock second at saturation.
    pub throughput_rps: f64,
    /// Fresh connection: connect + first request + first reply, µs.
    pub open_to_first_response_us: f64,
    /// Request-to-reply latency percentiles under load, µs.
    pub p50_us: f64,
    /// 99th percentile latency, µs.
    pub p99_us: f64,
    /// 99.9th percentile latency, µs.
    pub p999_us: f64,
    /// Mean nets per coalesced batch (batched_nets / batches), when the
    /// daemon's metrics plane was scraped.
    pub mean_batch: Option<f64>,
    /// Backoff retries clients spent on `overloaded` rejections before
    /// an answer — `None` for rows measured before retry budgets
    /// existed (absent, not zeroed, like `mean_batch`).
    pub retries: Option<u64>,
}

impl ServeRun {
    /// The row as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"window_us\": {}, \"connections\": {}, \"requests\": {}, \
             \"ok\": {}, \"degraded\": {}, \"rejected\": {}, \
             \"throughput_rps\": {:.2}, \"open_to_first_response_us\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}",
            self.window_us,
            self.connections,
            self.requests,
            self.ok,
            self.degraded,
            self.rejected,
            self.throughput_rps,
            self.open_to_first_response_us,
            self.p50_us,
            self.p99_us,
            self.p999_us,
        );
        if let Some(b) = self.mean_batch {
            let _ = write!(s, ", \"mean_batch\": {b:.2}");
        }
        if let Some(r) = self.retries {
            let _ = write!(s, ", \"retries\": {r}");
        }
        s.push('}');
        s
    }
}

/// Renders serve rows as a JSON array at the given indent — the value
/// side of a `"serve_runs": ...` line in [`render_report`]'s `extra`.
pub fn serve_rows_json(rows: &[ServeRun], indent: &str) -> String {
    if rows.is_empty() {
        return "[]".to_string();
    }
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(s, "{indent}  {}{comma}", r.to_json());
    }
    let _ = write!(s, "{indent}]");
    s
}

/// The preamble fields both benches agree on.
pub struct ReportHeader<'a> {
    pub bench: &'a str,
    pub nets: usize,
    pub seed: u64,
    pub hardware_threads: usize,
    pub serial_nets_per_sec: f64,
}

/// Renders the shared report body: the header preamble, plus runs
/// split into `scaling_runs` (threads ≤ hardware — real scaling data)
/// and `oversubscribed_runs` (kept for the record, never scaling
/// data). `extra` is spliced verbatim after the split arrays for
/// bench-specific fields (headline, verdicts, sweeps); pass complete
/// `  "key": value,`-style lines or an empty string.
pub fn render_report(
    header: &ReportHeader<'_>,
    runs: &[ScalingRun],
    extra: &str,
    notes: &str,
) -> String {
    let hardware_threads = header.hardware_threads;
    let scaling: Vec<&ScalingRun> = runs
        .iter()
        .filter(|r| !r.oversubscribed(hardware_threads))
        .collect();
    let oversub: Vec<&ScalingRun> = runs
        .iter()
        .filter(|r| r.oversubscribed(hardware_threads))
        .collect();
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"{}\",", header.bench);
    let _ = writeln!(json, "  \"schema\": \"scaling-v1\",");
    let _ = writeln!(json, "  \"nets\": {},", header.nets);
    let _ = writeln!(json, "  \"seed\": {},", header.seed);
    let _ = writeln!(json, "  \"hardware_threads\": {hardware_threads},");
    let _ = writeln!(
        json,
        "  \"serial_nets_per_sec\": {:.2},",
        header.serial_nets_per_sec
    );
    let _ = writeln!(json, "  \"scaling_runs\": {},", rows_json(&scaling, "  "));
    let _ = writeln!(
        json,
        "  \"oversubscribed_runs\": {},",
        rows_json(&oversub, "  ")
    );
    json.push_str(extra);
    let _ = writeln!(json, "  \"notes\": \"{notes}\"");
    let _ = writeln!(json, "}}");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(hardware_threads: usize) -> ReportHeader<'static> {
        ReportHeader {
            bench: "t",
            nets: 10,
            seed: 1,
            hardware_threads,
            serial_nets_per_sec: 100.0,
        }
    }

    fn run(threads: usize) -> ScalingRun {
        ScalingRun {
            threads,
            cache: false,
            nets_per_sec: 100.0,
            cache_hit_rate: 0.0,
            speedup_vs_serial: 1.0,
            ..ScalingRun::default()
        }
    }

    #[test]
    fn oversubscription_is_a_structural_split_not_a_caveat() {
        let runs = vec![run(1), run(2), run(8)];
        let json = render_report(&header(2), &runs, "", "n");
        // Rows with threads ≤ hardware land in scaling_runs; the
        // 8-thread row must be in oversubscribed_runs only.
        let scaling_part = json
            .split("\"oversubscribed_runs\"")
            .next()
            .unwrap()
            .to_string();
        assert!(scaling_part.contains("\"threads\": 1"));
        assert!(scaling_part.contains("\"threads\": 2"));
        assert!(!scaling_part.contains("\"threads\": 8"));
        let oversub_part = json.split("\"oversubscribed_runs\"").nth(1).unwrap();
        assert!(oversub_part.contains("\"threads\": 8"));
        assert!(json.contains("\"schema\": \"scaling-v1\""));
    }

    #[test]
    fn optional_telemetry_is_absent_not_zeroed() {
        let bare = run(1).to_json();
        assert!(!bare.contains("steals"));
        assert!(!bare.contains("utilization"));
        let full = ScalingRun {
            steals: Some(3),
            utilization: Some(0.5),
            contended_writes: Some(0),
            ..run(1)
        }
        .to_json();
        assert!(full.contains("\"steals\": 3"));
        assert!(full.contains("\"utilization\": 0.5000"));
        assert!(full.contains("\"contended_writes\": 0"));
    }

    #[test]
    fn serve_rows_splice_into_the_shared_report() {
        let rows = vec![
            ServeRun {
                window_us: 200,
                connections: 4,
                requests: 500,
                ok: 500,
                throughput_rps: 1234.5,
                open_to_first_response_us: 321.0,
                p50_us: 100.0,
                p99_us: 900.0,
                p999_us: 1500.0,
                mean_batch: Some(3.2),
                retries: Some(7),
                ..ServeRun::default()
            },
            ServeRun::default(),
        ];
        let extra = format!("  \"serve_runs\": {},\n", serve_rows_json(&rows, "  "));
        let json = render_report(&header(4), &[], &extra, "n");
        assert!(json.contains("\"schema\": \"scaling-v1\""));
        assert!(json.contains("\"serve_runs\": ["));
        assert!(json.contains("\"window_us\": 200"));
        assert!(json.contains("\"mean_batch\": 3.20"));
        assert!(json.contains("\"retries\": 7"));
        // The unscraped row omits mean_batch instead of zero-filling
        // it, and pre-retry-budget rows omit retries the same way.
        let bare = ServeRun::default().to_json();
        assert!(!bare.contains("mean_batch"));
        assert!(!bare.contains("retries"));
        // Splicing keeps the report a single well-formed object: the
        // notes line still closes it.
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_split_renders_an_empty_array() {
        let json = render_report(&header(4), &[run(1)], "", "n");
        assert!(json.contains("\"oversubscribed_runs\": [],"));
    }
}
