//! Lookup-table generation and query throughput (Table II's time column
//! and the per-net speed advantage behind Fig. 7(a)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use patlabor_lut::LutBuilder;
use rand::SeedableRng;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("lut_generation");
    group.sample_size(10);
    for lambda in [3u8, 4, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(lambda), &lambda, |b, &l| {
            b.iter(|| std::hint::black_box(LutBuilder::new(l).threads(1).build()))
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let table = LutBuilder::new(5).build();
    let mut group = c.benchmark_group("lut_query");
    for degree in [3usize, 4, 5] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(degree as u64);
        let nets: Vec<_> = (0..200)
            .map(|_| patlabor_netgen::uniform_net(&mut rng, degree, 10_000))
            .collect();
        group.throughput(Throughput::Elements(nets.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(degree), &nets, |b, nets| {
            b.iter(|| {
                for net in nets {
                    std::hint::black_box(table.query(net).map(|f| f.len()));
                }
            })
        });
    }
    group.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let table = LutBuilder::new(5).build();
    let mut bytes = Vec::new();
    table.write_to(&mut bytes).expect("in-memory write");
    c.bench_function("lut_roundtrip_lambda5", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            table.write_to(&mut buf).expect("write");
            std::hint::black_box(
                patlabor_lut::LookupTable::read_from(buf.as_slice()).expect("read"),
            )
        })
    });
}

criterion_group!(benches, bench_generation, bench_query, bench_serialization);
criterion_main!(benches);
