//! Microbenchmarks of the Pareto-set substrate: `Pareto(S)` pruning and
//! the Pareto sum `⊕` — the inner-loop operations of Pareto-DW whose cost
//! drives the `|S|²` factor in Theorems 3 and 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use patlabor_pareto::{Cost, ParetoSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_costs(rng: &mut StdRng, count: usize) -> Vec<Cost> {
    (0..count)
        .map(|_| Cost::new(rng.gen_range(0..100_000), rng.gen_range(0..100_000)))
        .collect()
}

fn bench_prune(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto_prune");
    for size in [100usize, 1_000, 10_000] {
        let mut rng = StdRng::seed_from_u64(1);
        let costs = random_costs(&mut rng, size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &costs, |b, costs| {
            b.iter(|| {
                let set: ParetoSet<()> = costs.iter().map(|&c| (c, ())).collect();
                std::hint::black_box(set.len())
            })
        });
    }
    group.finish();
}

fn bench_incremental_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto_insert");
    for size in [100usize, 1_000, 10_000] {
        let mut rng = StdRng::seed_from_u64(2);
        let costs = random_costs(&mut rng, size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &costs, |b, costs| {
            b.iter(|| {
                let mut set = ParetoSet::new();
                for &c in costs {
                    set.insert(c, ());
                }
                std::hint::black_box(set.len())
            })
        });
    }
    group.finish();
}

fn bench_pareto_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto_sum");
    for size in [10usize, 30, 100] {
        let mut rng = StdRng::seed_from_u64(3);
        let a: ParetoSet<()> = random_costs(&mut rng, size * 20).into_iter().collect();
        let b_set: ParetoSet<()> = random_costs(&mut rng, size * 20).into_iter().collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}x{}", a.len(), b_set.len())),
            &(a, b_set),
            |bencher, (a, b_set)| {
                bencher.iter(|| std::hint::black_box(a.pareto_sum(b_set, |_, _| ()).len()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_prune, bench_incremental_insert, bench_pareto_sum);
criterion_main!(benches);
