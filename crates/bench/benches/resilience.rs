//! Criterion bench for the resilience layer: the cost of arming a
//! per-net deadline (cooperative cancellation checkpoints in the DW and
//! local-search inner loops) against the same routing with no budget.
//!
//! The deadline is generous — one hour — so the checkpoints always run
//! and never fire: the comparison isolates pure checkpoint overhead,
//! which `src/bin/resilience_overhead.rs` guards below 2% on the full
//! BENCH_PR1 workload.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use patlabor::{Net, PatLabor, ResilienceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_nets(count: usize) -> Vec<Net> {
    let mut rng = StdRng::seed_from_u64(0xba7c4);
    (0..count)
        .map(|i| {
            let degree = rng.gen_range(3..=8);
            let span = [24, 60, 10_000][i % 3];
            patlabor_netgen::uniform_net(&mut rng, degree, span)
        })
        .collect()
}

fn bench_resilience(c: &mut Criterion) {
    let nets = sample_nets(300);
    let table = patlabor_lut::LutBuilder::new(5).build();
    let mut group = c.benchmark_group("resilience");
    group.sample_size(10);
    group.throughput(Throughput::Elements(nets.len() as u64));
    for budgeted in [false, true] {
        let router = PatLabor::with_table(table.clone()).with_resilience(ResilienceConfig {
            deadline: budgeted.then(|| Duration::from_secs(3600)),
            ..ResilienceConfig::default()
        });
        let label = if budgeted { "budgeted" } else { "unbudgeted" };
        group.bench_function(BenchmarkId::new("route_batch", label), |b| {
            b.iter(|| {
                let results = router.route_batch(&nets, 1);
                assert_eq!(results.len(), nets.len());
                std::hint::black_box(results)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_resilience);
criterion_main!(benches);
