//! Pareto-DW scaling: exact per-net frontier cost by degree, and the
//! effect of the pruning lemmas (the paper's §V-A acceleration claims).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use patlabor_dw::{numeric::pareto_frontier, DwConfig};
use patlabor_geom::Net;
use rand::SeedableRng;

fn nets(degree: usize, count: usize) -> Vec<Net> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(degree as u64);
    (0..count)
        .map(|_| patlabor_netgen::uniform_net(&mut rng, degree, 10_000))
        .collect()
}

fn bench_by_degree(c: &mut Criterion) {
    let mut group = c.benchmark_group("dw_exact_by_degree");
    group.sample_size(10);
    for degree in [4usize, 5, 6, 7, 8] {
        let sample = nets(degree, 5);
        group.bench_with_input(BenchmarkId::from_parameter(degree), &sample, |b, sample| {
            b.iter(|| {
                for net in sample {
                    std::hint::black_box(pareto_frontier(net, &DwConfig::default()).len());
                }
            })
        });
    }
    group.finish();
}

fn bench_pruning_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dw_pruning_ablation");
    group.sample_size(10);
    let sample = nets(7, 5);
    let configs = [
        ("all_lemmas", DwConfig::default()),
        ("no_pruning", DwConfig::unpruned()),
        (
            "corner_only",
            DwConfig {
                corner_pruning: true,
                bbox_shortcut: false,
                separator_split: false,
                max_frontier: None,
            },
        ),
        (
            "bbox_only",
            DwConfig {
                corner_pruning: false,
                bbox_shortcut: true,
                separator_split: false,
                max_frontier: None,
            },
        ),
    ];
    for (name, config) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| {
                for net in &sample {
                    std::hint::black_box(pareto_frontier(net, config).len());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_by_degree, bench_pruning_ablation);
criterion_main!(benches);
