//! End-to-end routing throughput: PatLabor vs SALT vs PD-II vs the
//! weighted-sum YSD substitute, small and large degrees (the runtime bars
//! of Fig. 7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use patlabor::{PatLabor, RouterConfig};
use patlabor_baselines::{pd, salt, weighted_sum};
use patlabor_geom::Net;
use rand::SeedableRng;

fn sample_nets(seed: u64, degree: usize, count: usize) -> Vec<Net> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| patlabor_netgen::clustered_net(&mut rng, degree, 10_000, 1 + degree / 12))
        .collect()
}

fn bench_degree(c: &mut Criterion, degree: usize, count: usize, sample_size: usize) {
    let router = PatLabor::with_config(RouterConfig {
        lambda: 5,
        ..RouterConfig::default()
    });
    let nets = sample_nets(degree as u64, degree, count);
    let mut group = c.benchmark_group(format!("routing_degree_{degree}"));
    group.sample_size(sample_size);
    group.throughput(Throughput::Elements(nets.len() as u64));
    group.bench_function(BenchmarkId::from_parameter("patlabor"), |b| {
        b.iter(|| {
            for net in &nets {
                std::hint::black_box(router.route_frontier(net).len());
            }
        })
    });
    group.bench_function(BenchmarkId::from_parameter("salt"), |b| {
        b.iter(|| {
            for net in &nets {
                std::hint::black_box(salt::salt_pareto(net, &salt::DEFAULT_EPSILONS).len());
            }
        })
    });
    group.bench_function(BenchmarkId::from_parameter("pd2"), |b| {
        b.iter(|| {
            for net in &nets {
                std::hint::black_box(pd::pd_pareto(net, &pd::DEFAULT_ALPHAS).len());
            }
        })
    });
    group.bench_function(BenchmarkId::from_parameter("weighted_sum"), |b| {
        b.iter(|| {
            for net in &nets {
                std::hint::black_box(
                    weighted_sum::weighted_sum_pareto(net, &weighted_sum::DEFAULT_BETAS).len(),
                );
            }
        })
    });
    group.finish();
}

fn bench_small_degree(c: &mut Criterion) {
    bench_degree(c, 5, 20, 10);
}

fn bench_large_degree(c: &mut Criterion) {
    bench_degree(c, 25, 4, 10);
}

criterion_group!(benches, bench_small_degree, bench_large_degree);
criterion_main!(benches);
