//! Criterion bench for the batch-routing driver: thread scaling and the
//! frontier cache on a fixed seeded mixed-degree workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use patlabor::{CacheConfig, Net, PatLabor, RouterConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_nets(count: usize) -> Vec<Net> {
    let mut rng = StdRng::seed_from_u64(0xba7c4);
    (0..count)
        .map(|i| {
            let degree = rng.gen_range(3..=8);
            let span = [24, 60, 10_000][i % 3];
            patlabor_netgen::uniform_net(&mut rng, degree, span)
        })
        .collect()
}

fn bench_batch_routing(c: &mut Criterion) {
    let nets = sample_nets(500);
    let mut group = c.benchmark_group("batch_routing");
    group.sample_size(10);
    group.throughput(Throughput::Elements(nets.len() as u64));
    for cache in [false, true] {
        let router = PatLabor::with_config(RouterConfig {
            lambda: 5,
            cache: if cache {
                CacheConfig::default()
            } else {
                CacheConfig::disabled()
            },
            ..RouterConfig::default()
        });
        for threads in [1usize, 2, 4, 8] {
            let label = format!("threads_{threads}_cache_{}", if cache { "on" } else { "off" });
            group.bench_with_input(BenchmarkId::from_parameter(label), &threads, |b, &t| {
                b.iter(|| std::hint::black_box(router.route_batch(&nets, t).len()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batch_routing);
criterion_main!(benches);
