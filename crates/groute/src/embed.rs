//! Embedding routing trees into the gcell grid.
//!
//! Each abstract tree edge becomes a rectilinear L-shaped route between
//! its endpoints' gcells; of the two L orientations the cheaper one under
//! the current congestion cost is taken (the standard pattern-routing
//! step of global routers).

use patlabor_tree::RoutingTree;

use crate::grid::{GcellEdge, RoutingGrid};

/// A routed net: the grid edges its embedding occupies (with
/// multiplicity).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EmbeddedNet {
    /// Occupied gcell edges (one entry per track used).
    pub edges: Vec<GcellEdge>,
}

impl EmbeddedNet {
    /// Applies the embedding to the grid (adds usage).
    pub fn commit(&self, grid: &mut RoutingGrid) {
        for &e in &self.edges {
            grid.adjust(e, 1);
        }
    }

    /// Removes the embedding from the grid (rip-up).
    pub fn rip_up(&self, grid: &mut RoutingGrid) {
        for &e in &self.edges {
            grid.adjust(e, -1);
        }
    }

    /// Congestion cost of this embedding if it were added to `grid` now.
    pub fn cost(&self, grid: &RoutingGrid) -> u64 {
        self.edges.iter().map(|&e| grid.edge_cost(e)).sum()
    }
}

/// Embeds a tree into the grid, greedily choosing per tree edge the
/// cheaper of the two L-shapes under the current congestion costs.
///
/// Pure with respect to the grid: the returned embedding is **not**
/// committed (call [`EmbeddedNet::commit`]).
pub fn embed_tree(grid: &RoutingGrid, tree: &RoutingTree) -> EmbeddedNet {
    let mut out = EmbeddedNet::default();
    for (child, parent) in tree.edges() {
        let a = grid.gcell_of(tree.point(child));
        let b = grid.gcell_of(tree.point(parent));
        let l1 = l_route(a, b, true);
        let l2 = l_route(a, b, false);
        let c1: u64 = l1.iter().map(|&e| grid.edge_cost(e)).sum();
        let c2: u64 = l2.iter().map(|&e| grid.edge_cost(e)).sum();
        out.edges.extend(if c1 <= c2 { l1 } else { l2 });
    }
    out
}

/// The gcell edges of an L route from `a` to `b`; `x_first` picks the
/// orientation.
fn l_route(a: (usize, usize), b: (usize, usize), x_first: bool) -> Vec<GcellEdge> {
    let mut edges = Vec::new();
    let (ax, ay) = a;
    let (bx, by) = b;
    let h_span = |y: usize, edges: &mut Vec<GcellEdge>| {
        for col in ax.min(bx)..ax.max(bx) {
            edges.push(GcellEdge {
                col,
                row: y,
                horizontal: true,
            });
        }
    };
    let v_span = |x: usize, edges: &mut Vec<GcellEdge>| {
        for row in ay.min(by)..ay.max(by) {
            edges.push(GcellEdge {
                col: x,
                row,
                horizontal: false,
            });
        }
    };
    if x_first {
        h_span(ay, &mut edges);
        v_span(bx, &mut edges);
    } else {
        v_span(ax, &mut edges);
        h_span(by, &mut edges);
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridConfig;
    use patlabor_geom::{Net, Point};

    fn grid() -> RoutingGrid {
        RoutingGrid::new(GridConfig::square(8, 800, 2))
    }

    fn tree(pts: &[(i64, i64)]) -> RoutingTree {
        let net = Net::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap();
        RoutingTree::direct(&net)
    }

    #[test]
    fn l_route_lengths_match_manhattan_distance() {
        for (a, b) in [((0, 0), (3, 2)), ((5, 5), (5, 1)), ((2, 2), (2, 2))] {
            for x_first in [true, false] {
                let r = l_route(a, b, x_first);
                let expect = a.0.abs_diff(b.0) + a.1.abs_diff(b.1);
                assert_eq!(r.len(), expect, "{a:?}→{b:?} x_first={x_first}");
            }
        }
    }

    #[test]
    fn commit_and_rip_up_are_inverse() {
        let mut g = grid();
        let t = tree(&[(50, 50), (550, 350)]);
        let e = embed_tree(&g, &t);
        assert!(!e.edges.is_empty());
        e.commit(&mut g);
        assert!(g.max_usage() > 0);
        e.rip_up(&mut g);
        assert_eq!(g.max_usage(), 0);
        assert_eq!(g.total_overflow(), 0);
    }

    #[test]
    fn embedding_avoids_congested_l() {
        let mut g = grid();
        // Saturate the x-first L's horizontal corridor at row 0.
        for col in 0..7 {
            for _ in 0..4 {
                g.adjust(
                    GcellEdge {
                        col,
                        row: 0,
                        horizontal: true,
                    },
                    1,
                );
            }
        }
        let t = tree(&[(10, 10), (750, 550)]);
        let e = embed_tree(&g, &t);
        // The embedding must not add usage on the saturated corridor.
        let used_row0: usize = e
            .edges
            .iter()
            .filter(|e| e.horizontal && e.row == 0)
            .count();
        assert_eq!(used_row0, 0, "picked the congested L: {e:?}");
    }

    #[test]
    fn same_gcell_edge_costs_nothing() {
        let g = grid();
        let t = tree(&[(10, 10), (20, 20)]); // same gcell
        let e = embed_tree(&g, &t);
        assert!(e.edges.is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Every embedding uses exactly the gcell-Manhattan length of
            /// its tree edges, regardless of L choices, and commit/rip-up
            /// round-trips leave the grid untouched.
            #[test]
            fn prop_embedding_length_and_reversibility(
                pts in proptest::collection::vec((0i64..800, 0i64..800), 2..7),
            ) {
                let net = patlabor_geom::Net::new(
                    pts.into_iter().map(patlabor_geom::Point::from).collect(),
                ).unwrap();
                let t = RoutingTree::direct(&net);
                let mut g = grid();
                let e = embed_tree(&g, &t);
                let expect: usize = t
                    .edges()
                    .map(|(v, p)| {
                        let a = g.gcell_of(t.point(v));
                        let b = g.gcell_of(t.point(p));
                        a.0.abs_diff(b.0) + a.1.abs_diff(b.1)
                    })
                    .sum();
                prop_assert_eq!(e.edges.len(), expect);
                e.commit(&mut g);
                e.rip_up(&mut g);
                prop_assert_eq!(g.max_usage(), 0);
            }
        }
    }
}
