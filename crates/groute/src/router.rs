//! Sequential global routing with Pareto-candidate selection.

use patlabor::{Net, ParetoSet, PatLabor, RoutingTree};

use crate::embed::{embed_tree, EmbeddedNet};
use crate::grid::RoutingGrid;

/// How the router picks one tree from a net's Pareto set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionStrategy {
    /// Always the minimum-wirelength tree (what a FLUTE-only flow does).
    MinWirelength,
    /// Always the minimum-delay tree (shortest-path-tree flow).
    MinDelay,
    /// Congestion-aware: among trees meeting the per-net delay budget
    /// (`slack` × the net's delay lower bound), the one whose embedding is
    /// cheapest under current congestion; falls back to the fastest tree
    /// when nothing meets the budget.
    CongestionAware {
        /// Delay budget multiplier (≥ 1.0), e.g. `1.1` = 10% slack.
        slack: f64,
    },
}

/// Outcome of a [`GlobalRouter::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteReport {
    /// Total gcell-edge overflow after routing.
    pub overflow: u64,
    /// Total tree wirelength (plane units).
    pub wirelength: i64,
    /// Nets whose chosen tree exceeds the delay budget.
    pub budget_violations: usize,
    /// Maximum edge usage.
    pub max_usage: u32,
}

/// A sequential global router with one rip-up-and-reroute pass.
///
/// Per net, candidate trees come from the PatLabor Pareto set; the
/// [`SelectionStrategy`] decides which candidate is committed. The rip-up
/// pass revisits the nets in congestion order and lets them switch to a
/// different Pareto candidate (the DGR-style candidate-set advantage the
/// paper's introduction argues for).
#[derive(Debug)]
pub struct GlobalRouter<'a> {
    router: &'a PatLabor,
    strategy: SelectionStrategy,
}

impl<'a> GlobalRouter<'a> {
    /// Creates a router over a shared PatLabor instance.
    pub fn new(router: &'a PatLabor, strategy: SelectionStrategy) -> Self {
        GlobalRouter { router, strategy }
    }

    /// Routes every net, then runs one rip-up-and-reroute pass, and
    /// reports the final congestion/wirelength/timing metrics.
    pub fn run(&self, grid: &mut RoutingGrid, nets: &[Net]) -> RouteReport {
        let mut chosen: Vec<(RoutingTree, EmbeddedNet)> = Vec::with_capacity(nets.len());
        let frontiers: Vec<ParetoSet<RoutingTree>> =
            nets.iter().map(|n| self.router.route_frontier(n)).collect();

        // First pass: greedy sequential.
        for (net, frontier) in nets.iter().zip(&frontiers) {
            let tree = self.select(grid, net, frontier);
            let embedding = embed_tree(grid, &tree);
            embedding.commit(grid);
            chosen.push((tree, embedding));
        }

        // Rip-up & reroute: revisit nets whose embedding touches overflow.
        let mut order: Vec<usize> = (0..nets.len()).collect();
        order.sort_by_key(|&i| {
            std::cmp::Reverse(
                chosen[i]
                    .1
                    .edges
                    .iter()
                    .map(|&e| grid.overflow(e) as u64)
                    .sum::<u64>(),
            )
        });
        for i in order {
            let touches_overflow = chosen[i]
                .1
                .edges
                .iter()
                .any(|&e| grid.overflow(e) > 0);
            if !touches_overflow {
                continue;
            }
            chosen[i].1.rip_up(grid);
            let tree = self.select(grid, &nets[i], &frontiers[i]);
            let embedding = embed_tree(grid, &tree);
            embedding.commit(grid);
            chosen[i] = (tree, embedding);
        }

        // Report.
        let mut wirelength = 0;
        let mut violations = 0;
        for (net, (tree, _)) in nets.iter().zip(&chosen) {
            wirelength += tree.wirelength();
            if tree.delay() > self.budget(net) {
                violations += 1;
            }
        }
        RouteReport {
            overflow: grid.total_overflow(),
            wirelength,
            budget_violations: violations,
            max_usage: grid.max_usage(),
        }
    }

    fn budget(&self, net: &Net) -> i64 {
        // A single slack is used for both candidate selection and the
        // violation report, so strategies are judged against the same
        // timing constraint.
        let slack = match self.strategy {
            SelectionStrategy::CongestionAware { slack } => slack,
            _ => 1.2,
        };
        (net.delay_lower_bound() as f64 * slack).floor() as i64
    }

    fn select(
        &self,
        grid: &RoutingGrid,
        net: &Net,
        frontier: &ParetoSet<RoutingTree>,
    ) -> RoutingTree {
        match self.strategy {
            SelectionStrategy::MinWirelength => frontier
                .min_wirelength()
                .expect("frontier is never empty")
                .1
                .clone(),
            SelectionStrategy::MinDelay => frontier
                .min_delay()
                .expect("frontier is never empty")
                .1
                .clone(),
            SelectionStrategy::CongestionAware { .. } => {
                let budget = self.budget(net);
                let mut best: Option<(u64, i64, RoutingTree)> = None;
                for (cost, tree) in frontier.iter() {
                    if cost.delay > budget {
                        continue;
                    }
                    let embed_cost = embed_tree(grid, tree).cost(grid);
                    let better = match &best {
                        None => true,
                        Some((bc, bw, _)) => {
                            (embed_cost, cost.wirelength) < (*bc, *bw)
                        }
                    };
                    if better {
                        best = Some((embed_cost, cost.wirelength, tree.clone()));
                    }
                }
                best.map(|(_, _, t)| t).unwrap_or_else(|| {
                    frontier
                        .min_delay()
                        .expect("frontier is never empty")
                        .1
                        .clone()
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridConfig;
    use patlabor::RouterConfig;

    fn router() -> PatLabor {
        PatLabor::with_config(RouterConfig {
            lambda: 4,
            ..RouterConfig::default()
        })
    }

    fn design(seed: u64, count: usize) -> Vec<Net> {
        patlabor_netgen::iccad_like_suite(seed, count, 12)
            .into_iter()
            .map(|n| n.dedup_pins())
            .collect()
    }

    #[test]
    fn all_strategies_produce_reports() {
        let pl = router();
        let nets = design(7, 25);
        for strategy in [
            SelectionStrategy::MinWirelength,
            SelectionStrategy::MinDelay,
            SelectionStrategy::CongestionAware { slack: 1.1 },
        ] {
            let mut grid = RoutingGrid::new(GridConfig::square(10, 10_000, 6));
            let report = GlobalRouter::new(&pl, strategy).run(&mut grid, &nets);
            assert!(report.wirelength > 0);
            assert_eq!(grid.total_overflow(), report.overflow);
        }
    }

    #[test]
    fn min_delay_never_violates_its_own_budget() {
        let pl = router();
        let nets = design(9, 20);
        let mut grid = RoutingGrid::new(GridConfig::square(10, 10_000, 8));
        let report = GlobalRouter::new(&pl, SelectionStrategy::MinDelay).run(&mut grid, &nets);
        assert_eq!(report.budget_violations, 0);
    }

    #[test]
    fn congestion_aware_beats_min_wirelength_on_overflow() {
        let pl = router();
        let nets = design(11, 40);
        // Tight capacity forces congestion.
        let mut grid_w = RoutingGrid::new(GridConfig::square(8, 10_000, 2));
        let w = GlobalRouter::new(&pl, SelectionStrategy::MinWirelength)
            .run(&mut grid_w, &nets);
        let mut grid_c = RoutingGrid::new(GridConfig::square(8, 10_000, 2));
        let c = GlobalRouter::new(&pl, SelectionStrategy::CongestionAware { slack: 1.2 })
            .run(&mut grid_c, &nets);
        assert!(
            c.overflow <= w.overflow,
            "candidate selection should not increase overflow: {c:?} vs {w:?}"
        );
    }

    #[test]
    fn usage_accounting_survives_rip_up_cycles() {
        let pl = router();
        let nets = design(13, 15);
        let mut grid = RoutingGrid::new(GridConfig::square(6, 10_000, 1));
        let _ = GlobalRouter::new(&pl, SelectionStrategy::CongestionAware { slack: 1.3 })
            .run(&mut grid, &nets);
        // Re-running on a fresh grid gives identical results (deterministic).
        let mut grid2 = RoutingGrid::new(GridConfig::square(6, 10_000, 1));
        let a = GlobalRouter::new(&pl, SelectionStrategy::CongestionAware { slack: 1.3 })
            .run(&mut grid2, &nets);
        let mut grid3 = RoutingGrid::new(GridConfig::square(6, 10_000, 1));
        let b = GlobalRouter::new(&pl, SelectionStrategy::CongestionAware { slack: 1.3 })
            .run(&mut grid3, &nets);
        assert_eq!(a, b);
    }
}
