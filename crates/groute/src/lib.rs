//! Global-routing integration substrate.
//!
//! The paper motivates Pareto sets with global routing (§I): "selecting
//! net topologies from a candidate solution set may improve the
//! performance of global routers" (citing DGR). This crate builds the
//! minimal substrate needed to demonstrate that claim end-to-end:
//!
//! * [`RoutingGrid`] — a gcell grid with per-edge capacities and usage
//!   accounting (the standard global-routing congestion model);
//! * [`embed_tree`] — embedding a [`RoutingTree`](patlabor_tree::RoutingTree)
//!   into grid edges, choosing each edge's L-shape against current
//!   congestion;
//! * [`GlobalRouter`] — a sequential router with rip-up-and-reroute that
//!   picks, per net, one tree from its PatLabor Pareto set under a
//!   congestion/delay-aware [`SelectionStrategy`].
//!
//! The `global_routing` example compares single-solution routing (always
//! RSMT, always SPT) against Pareto-candidate selection on overflow,
//! wirelength and delay-budget violations.

mod embed;
mod grid;
mod router;

pub use embed::{embed_tree, EmbeddedNet};
pub use grid::{GcellEdge, GridConfig, RoutingGrid};
pub use router::{GlobalRouter, RouteReport, SelectionStrategy};
