//! The gcell grid and its congestion accounting.

use patlabor_geom::Point;

/// Grid geometry and capacity configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridConfig {
    /// Number of gcell columns.
    pub cols: usize,
    /// Number of gcell rows.
    pub rows: usize,
    /// Plane width covered by the grid (coordinates `0..width`).
    pub width: i64,
    /// Plane height covered by the grid.
    pub height: i64,
    /// Routing tracks per horizontal gcell boundary.
    pub h_capacity: u32,
    /// Routing tracks per vertical gcell boundary.
    pub v_capacity: u32,
}

impl GridConfig {
    /// A square grid covering `span × span` with uniform capacity.
    pub fn square(cells: usize, span: i64, capacity: u32) -> Self {
        GridConfig {
            cols: cells,
            rows: cells,
            width: span,
            height: span,
            h_capacity: capacity,
            v_capacity: capacity,
        }
    }
}

/// One gcell-boundary edge, identified by the gcell on its lower/left
/// side and its direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GcellEdge {
    /// Gcell column of the lower/left endpoint.
    pub col: usize,
    /// Gcell row of the lower/left endpoint.
    pub row: usize,
    /// `true` for a horizontal edge (to `(col+1, row)`), `false` for a
    /// vertical edge (to `(col, row+1)`).
    pub horizontal: bool,
}

/// A gcell grid with usage tracking.
///
/// # Example
///
/// ```
/// use patlabor_groute::{GridConfig, RoutingGrid};
/// use patlabor_geom::Point;
///
/// let mut grid = RoutingGrid::new(GridConfig::square(8, 800, 4));
/// let cell = grid.gcell_of(Point::new(99, 700));
/// assert_eq!(cell, (0, 7));
/// assert_eq!(grid.total_overflow(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct RoutingGrid {
    config: GridConfig,
    /// `h_usage[row][col]` = usage of the horizontal edge from
    /// `(col,row)` to `(col+1,row)`.
    h_usage: Vec<Vec<u32>>,
    /// `v_usage[row][col]` = usage of the vertical edge from `(col,row)`
    /// to `(col,row+1)`.
    v_usage: Vec<Vec<u32>>,
}

impl RoutingGrid {
    /// Creates an empty grid.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no cells or area).
    pub fn new(config: GridConfig) -> Self {
        assert!(config.cols >= 2 && config.rows >= 2, "grid needs 2x2 cells");
        assert!(config.width > 0 && config.height > 0, "grid needs area");
        RoutingGrid {
            config,
            h_usage: vec![vec![0; config.cols - 1]; config.rows],
            v_usage: vec![vec![0; config.cols]; config.rows - 1],
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GridConfig {
        &self.config
    }

    /// The gcell `(col, row)` containing a plane point (out-of-range
    /// points clamp to the border cells).
    pub fn gcell_of(&self, p: Point) -> (usize, usize) {
        let col = (p.x * self.config.cols as i64 / self.config.width)
            .clamp(0, self.config.cols as i64 - 1) as usize;
        let row = (p.y * self.config.rows as i64 / self.config.height)
            .clamp(0, self.config.rows as i64 - 1) as usize;
        (col, row)
    }

    /// Usage of an edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge is outside the grid.
    pub fn usage(&self, e: GcellEdge) -> u32 {
        if e.horizontal {
            self.h_usage[e.row][e.col]
        } else {
            self.v_usage[e.row][e.col]
        }
    }

    /// Capacity of an edge.
    pub fn capacity(&self, e: GcellEdge) -> u32 {
        if e.horizontal {
            self.config.h_capacity
        } else {
            self.config.v_capacity
        }
    }

    /// Overflow of an edge (`usage − capacity`, clamped at 0).
    pub fn overflow(&self, e: GcellEdge) -> u32 {
        self.usage(e).saturating_sub(self.capacity(e))
    }

    /// Adds (`delta = +1`) or removes (`delta = -1`) one track of usage.
    ///
    /// # Panics
    ///
    /// Panics when removing from an unused edge.
    pub fn adjust(&mut self, e: GcellEdge, delta: i32) {
        let slot = if e.horizontal {
            &mut self.h_usage[e.row][e.col]
        } else {
            &mut self.v_usage[e.row][e.col]
        };
        if delta >= 0 {
            *slot += delta as u32;
        } else {
            *slot = slot
                .checked_sub((-delta) as u32)
                .expect("usage accounting went negative");
        }
    }

    /// Sum of overflows over every edge — the primary congestion metric.
    pub fn total_overflow(&self) -> u64 {
        let mut total = 0u64;
        for (row, cols) in self.h_usage.iter().enumerate() {
            for (col, _) in cols.iter().enumerate() {
                total += self.overflow(GcellEdge {
                    col,
                    row,
                    horizontal: true,
                }) as u64;
            }
        }
        for (row, cols) in self.v_usage.iter().enumerate() {
            for (col, _) in cols.iter().enumerate() {
                total += self.overflow(GcellEdge {
                    col,
                    row,
                    horizontal: false,
                }) as u64;
            }
        }
        total
    }

    /// Maximum edge usage (for congestion maps).
    pub fn max_usage(&self) -> u32 {
        let h = self.h_usage.iter().flatten().copied().max().unwrap_or(0);
        let v = self.v_usage.iter().flatten().copied().max().unwrap_or(0);
        h.max(v)
    }

    /// The cost of adding one track to `e` under a congestion-aware cost
    /// model: 1 plus a quadratic penalty as the edge approaches / exceeds
    /// capacity.
    pub fn edge_cost(&self, e: GcellEdge) -> u64 {
        let usage = self.usage(e) as u64;
        let cap = self.capacity(e) as u64;
        if usage < cap {
            1
        } else {
            let over = usage - cap + 1;
            1 + 16 * over * over
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> RoutingGrid {
        RoutingGrid::new(GridConfig::square(4, 400, 2))
    }

    #[test]
    fn gcell_mapping_and_clamping() {
        let g = grid();
        assert_eq!(g.gcell_of(Point::new(0, 0)), (0, 0));
        assert_eq!(g.gcell_of(Point::new(399, 399)), (3, 3));
        assert_eq!(g.gcell_of(Point::new(-50, 4000)), (0, 3));
        assert_eq!(g.gcell_of(Point::new(100, 100)), (1, 1));
    }

    #[test]
    fn usage_and_overflow_accounting() {
        let mut g = grid();
        let e = GcellEdge {
            col: 1,
            row: 2,
            horizontal: true,
        };
        assert_eq!(g.usage(e), 0);
        for _ in 0..3 {
            g.adjust(e, 1);
        }
        assert_eq!(g.usage(e), 3);
        assert_eq!(g.overflow(e), 1); // capacity 2
        assert_eq!(g.total_overflow(), 1);
        g.adjust(e, -1);
        assert_eq!(g.total_overflow(), 0);
        assert_eq!(g.max_usage(), 2);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_usage_panics() {
        let mut g = grid();
        g.adjust(
            GcellEdge {
                col: 0,
                row: 0,
                horizontal: false,
            },
            -1,
        );
    }

    #[test]
    fn edge_cost_grows_with_congestion() {
        let mut g = grid();
        let e = GcellEdge {
            col: 0,
            row: 0,
            horizontal: true,
        };
        let c0 = g.edge_cost(e);
        g.adjust(e, 2); // at capacity
        let c_at = g.edge_cost(e);
        g.adjust(e, 2); // over capacity
        let c_over = g.edge_cost(e);
        assert!(c0 < c_at && c_at < c_over);
    }
}
