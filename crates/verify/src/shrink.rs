//! Greedy counterexample minimization.
//!
//! Given a net on which some predicate holds (a fast path diverging from
//! its oracle), the shrinker searches for a smaller net on which it still
//! holds: fewer sinks, coordinates pulled toward the origin. Every
//! candidate is re-checked through the *same* predicate, so the minimized
//! net is guaranteed to still reproduce the divergence.

use patlabor::{Net, Point};

/// Minimizes `net` with respect to `diverges`, which must hold on `net`
/// itself. Returns the smallest net found plus the number of accepted
/// shrink steps. At most `max_evals` predicate evaluations are spent.
///
/// Three greedy passes run to fixpoint (or budget exhaustion):
///
/// 1. **drop sinks** — remove one sink at a time, highest index first
///    (the source pin is never removed);
/// 2. **translate** — move the whole net so its bounding box touches the
///    origin;
/// 3. **pull coordinates** — halve each coordinate toward zero, then
///    decrement by one.
///
/// A candidate is accepted only when `diverges` still holds on it, so the
/// result diverges by construction. The predicate sees candidate nets of
/// degree ≥ 2; predicates with degree floors (most oracle pairs need
/// degree ≥ 3) simply reject candidates below their floor.
pub fn shrink_net<F>(net: &Net, mut diverges: F, max_evals: usize) -> (Net, usize)
where
    F: FnMut(&Net) -> bool,
{
    let mut current = net.clone();
    let mut steps = 0usize;
    let mut evals = 0usize;

    // Tries one candidate pin set; on success it becomes the current net.
    let mut accept = |pins: Vec<Point>, current: &mut Net, evals: &mut usize| -> bool {
        if *evals >= max_evals {
            return false;
        }
        let Ok(candidate) = Net::new(pins) else {
            return false;
        };
        *evals += 1;
        if diverges(&candidate) {
            *current = candidate;
            true
        } else {
            false
        }
    };

    loop {
        let mut progressed = false;

        // Pass 1: drop sinks, highest index first.
        let mut idx = current.degree();
        while idx > 1 && current.degree() > 2 {
            idx -= 1;
            let mut pins = current.pins().to_vec();
            pins.remove(idx);
            if accept(pins, &mut current, &mut evals) {
                steps += 1;
                progressed = true;
            }
        }

        // Pass 2: translate the bounding box onto the origin.
        let (min_x, min_y) = current.pins().iter().fold((i64::MAX, i64::MAX), |(x, y), p| {
            (x.min(p.x), y.min(p.y))
        });
        if (min_x, min_y) != (0, 0) {
            let pins = current
                .pins()
                .iter()
                .map(|p| Point::new(p.x - min_x, p.y - min_y))
                .collect();
            if accept(pins, &mut current, &mut evals) {
                steps += 1;
                progressed = true;
            }
        }

        // Pass 3: pull every coordinate toward zero — halve, then step.
        for pin_idx in 0..current.degree() {
            for axis in 0..2 {
                loop {
                    let p = current.pins()[pin_idx];
                    let c = if axis == 0 { p.x } else { p.y };
                    let mut shrunk = false;
                    for candidate_coord in [c / 2, c - c.signum()] {
                        if candidate_coord == c {
                            continue;
                        }
                        let mut pins = current.pins().to_vec();
                        pins[pin_idx] = if axis == 0 {
                            Point::new(candidate_coord, p.y)
                        } else {
                            Point::new(p.x, candidate_coord)
                        };
                        if accept(pins, &mut current, &mut evals) {
                            steps += 1;
                            progressed = true;
                            shrunk = true;
                            break;
                        }
                    }
                    if !shrunk || evals >= max_evals {
                        break;
                    }
                }
            }
        }

        if !progressed || evals >= max_evals {
            return (current, steps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(pins: &[(i64, i64)]) -> Net {
        Net::new(pins.iter().map(|&(x, y)| Point::new(x, y)).collect()).expect("valid net")
    }

    #[test]
    fn shrinks_to_a_tiny_witness_when_predicate_is_loose() {
        // "Some pin has a nonzero x" holds on any net with one such pin;
        // the minimal witness is two pins with a single x = 1.
        let start = net(&[(40, 37), (12, 5), (33, 90), (7, 7), (25, 1)]);
        let diverges = |n: &Net| n.pins().iter().any(|p| p.x != 0);
        let (min, steps) = shrink_net(&start, diverges, 10_000);
        assert!(diverges(&min), "shrinker must preserve the predicate");
        assert_eq!(min.degree(), 2, "sinks should shrink away");
        let max_coord = min.pins().iter().map(|p| p.x.abs().max(p.y.abs())).max();
        assert_eq!(max_coord, Some(1), "coordinates should pull to 0/1");
        assert!(steps > 0);
    }

    #[test]
    fn respects_degree_floor_of_the_predicate() {
        // A predicate gated on degree ≥ 3 keeps the shrinker from going
        // below three pins even though it tries.
        let start = net(&[(10, 10), (20, 3), (4, 18), (9, 9)]);
        let diverges = |n: &Net| n.degree() >= 3;
        let (min, _) = shrink_net(&start, diverges, 10_000);
        assert_eq!(min.degree(), 3);
    }

    #[test]
    fn returns_input_when_nothing_smaller_diverges() {
        let start = net(&[(0, 0), (1, 0)]);
        let exact = start.clone();
        let diverges = move |n: &Net| *n == exact;
        let (min, steps) = shrink_net(&start, diverges, 1_000);
        assert_eq!(min, start);
        assert_eq!(steps, 0);
    }

    #[test]
    fn honors_the_evaluation_budget() {
        let mut evals = 0usize;
        let start = net(&[(100, 100), (50, 75), (25, 10)]);
        let diverges = |_: &Net| {
            evals += 1;
            true
        };
        shrink_net(&start, diverges, 7);
        assert!(evals <= 7);
    }
}
