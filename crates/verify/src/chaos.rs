//! Chaos soak: a real daemon under a seeded transport fault schedule.
//!
//! The differential matrix (lib.rs) asks "is every fast path
//! indistinguishable from its oracle?". This module asks the other
//! robustness question: when the *transport* misbehaves — torn reply
//! frames, corrupted bytes, mid-reply disconnects, stalled and delayed
//! I/O — does the daemon still keep its crash-only promises? The soak
//! boots an in-process [`Server`] with an armed
//! [`TransportPlane`], drives it with reconnecting, retrying clients,
//! starts a SIGINT-style drain while faults are still firing, and then
//! audits the ledger:
//!
//! 1. **Answered exactly once or closed** — within one connection a
//!    reply correlates to the one outstanding request; a damaged frame
//!    only ever appears on a connection that dies (clients observe it
//!    as an I/O error, never as a plausible wrong answer).
//! 2. **Drain under chaos is bounded** — shutdown completes within the
//!    configured bound even with faults firing mid-drain.
//! 3. **The rung ledger balances** — Σ served-by-rung equals the
//!    response counter exactly; chaos must not double-count or leak.
//! 4. **No torn frame is ever accepted** — a parsed reply carrying an
//!    id the client never sent indicts the framing layer.
//!
//! Everything is a pure function of the seed: the fault schedule, the
//! corpus, and the retry jitter all derive from it, so a CI failure
//! replays locally with `patlabor verify --chaos-soak --seed <seed>`.

use std::time::{Duration, Instant};

use patlabor::Engine;
use patlabor_lut::LutBuilder;
use patlabor_serve::{
    serve, Json, RetryPolicy, RouteClient, RouteRequest, ServeConfig, TransportPlane,
};

/// Soak shape: how hard and how long to shake the daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSoakConfig {
    /// Seeds the fault schedule, the corpus, and the retry jitter.
    pub seed: u64,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client attempts to get answered.
    pub nets_per_client: usize,
    /// λ of the served table (4 builds in milliseconds).
    pub lambda: u8,
    /// How long clients run before the SIGINT-style drain begins.
    pub run_for: Duration,
    /// Invariant 2's bound: drain must complete within this.
    pub drain_bound: Duration,
}

impl Default for ChaosSoakConfig {
    fn default() -> Self {
        ChaosSoakConfig {
            seed: 0xC4A0_55EE,
            clients: 4,
            nets_per_client: 48,
            lambda: 4,
            run_for: Duration::from_millis(250),
            drain_bound: Duration::from_secs(10),
        }
    }
}

/// What the soak observed, with every invariant breach spelled out in
/// `violations` — empty means the daemon kept its crash-only promises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSoakReport {
    /// The schedule/corpus/jitter seed (replay key).
    pub seed: u64,
    /// Well-formed, correctly-correlated answers clients received.
    pub answered: u64,
    /// Backoff retries clients spent on `overloaded` rejections.
    pub retries: u64,
    /// Connections clients lost to injected faults (and re-opened).
    pub reconnects: u64,
    /// Responses the server counted (accepted, routed, reply sent).
    pub responses: u64,
    /// Σ over the degradation ladder's per-rung counters.
    pub served_by_sum: u64,
    /// Admission-control rejections.
    pub rejected: u64,
    /// Slow-client / stalled-read evictions.
    pub evicted: u64,
    /// Transport faults the chaos plane injected.
    pub chaos_injected: u64,
    /// begin-drain → fully-joined wall time, milliseconds.
    pub drain_ms: u64,
    /// Every invariant breach, human-readable. Empty ⇔ pass.
    pub violations: Vec<String>,
}

impl ChaosSoakReport {
    /// Whether every crash-only invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Multi-line human summary (the CLI's output).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "chaos-soak: seed {:#x}\n  answered {} (retries {}, reconnects {})\n  \
             server: {} responses, {} by-rung, {} rejected, {} evicted, {} faults injected\n  \
             drain: {} ms\n",
            self.seed,
            self.answered,
            self.retries,
            self.reconnects,
            self.responses,
            self.served_by_sum,
            self.rejected,
            self.evicted,
            self.chaos_injected,
            self.drain_ms,
        );
        if self.violations.is_empty() {
            out.push_str("all crash-only invariants held\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("VIOLATION: {v}\n"));
            }
        }
        out
    }
}

/// What one client thread brings home.
struct ClientTally {
    answered: u64,
    retries: u64,
    reconnects: u64,
    violations: Vec<String>,
}

/// Runs the soak. Boots the daemon with every fault kind armed at
/// moderate probability, shakes it with reconnecting clients, drains
/// mid-chaos, and audits the invariants. Pure function of the config.
pub fn chaos_soak(config: &ChaosSoakConfig) -> ChaosSoakReport {
    let chaos = TransportPlane::seeded(config.seed)
        .with_spec("torn-write:0.06")
        .and_then(|p| p.with_spec("corrupt-write:0.06"))
        .and_then(|p| p.with_spec("disconnect:0.04"))
        .and_then(|p| p.with_spec("stall-write:0.02"))
        .and_then(|p| p.with_spec("delay-read:0.08"))
        .expect("static fault specs parse")
        .with_delay(Duration::from_millis(5));
    let engine = Engine::with_table(LutBuilder::new(config.lambda).threads(2).build());
    let server = serve(
        engine,
        ServeConfig {
            window: Duration::from_millis(1),
            read_stall: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            chaos,
            ..ServeConfig::default()
        },
    )
    .expect("soak daemon binds a free loopback port");
    let addr = server.addr();

    let handles: Vec<_> = (0..config.clients)
        .map(|t| {
            let seed = config.seed ^ (t as u64);
            let count = config.nets_per_client;
            let lambda = config.lambda;
            std::thread::spawn(move || run_client(addr, seed, t as u64, count, lambda))
        })
        .collect();

    std::thread::sleep(config.run_for);
    let drain_started = Instant::now();
    server.begin_shutdown();

    let mut answered = 0u64;
    let mut retries = 0u64;
    let mut reconnects = 0u64;
    let mut violations = Vec::new();
    for handle in handles {
        match handle.join() {
            Ok(tally) => {
                answered += tally.answered;
                retries += tally.retries;
                reconnects += tally.reconnects;
                violations.extend(tally.violations);
            }
            Err(_) => violations.push("a soak client thread panicked".to_string()),
        }
    }
    let summary = server.shutdown();
    let drain_ms = drain_started.elapsed().as_millis() as u64;

    let served_by_sum: u64 = summary.served_by.iter().sum();
    if served_by_sum != summary.responses {
        violations.push(format!(
            "rung ledger does not balance: Σ served-by-rung = {served_by_sum}, \
             responses = {}",
            summary.responses
        ));
    }
    if answered > summary.responses {
        violations.push(format!(
            "clients saw {answered} well-formed answers but the server only \
             counted {} responses",
            summary.responses
        ));
    }
    if drain_ms > config.drain_bound.as_millis() as u64 {
        violations.push(format!(
            "drain took {drain_ms} ms under chaos, bound is {} ms",
            config.drain_bound.as_millis()
        ));
    }
    if summary.chaos_injected == 0 {
        violations.push("the fault schedule never fired — the soak tested nothing".to_string());
    }

    ChaosSoakReport {
        seed: config.seed,
        answered,
        retries,
        reconnects,
        responses: summary.responses,
        served_by_sum,
        rejected: summary.rejected,
        evicted: summary.evicted,
        chaos_injected: summary.chaos_injected,
        drain_ms,
        violations,
    }
}

/// One reconnecting, retrying client. Every request either gets a
/// well-formed reply correlated by id, or its connection observably
/// dies and the request is retried on a fresh one. A parsed reply with
/// the wrong id is the one thing that must never happen.
fn run_client(
    addr: std::net::SocketAddr,
    seed: u64,
    client: u64,
    count: usize,
    lambda: u8,
) -> ClientTally {
    let nets = patlabor_netgen::iccad_like_suite(seed, count, lambda as usize);
    let policy = RetryPolicy::seeded(seed);
    let mut tally = ClientTally {
        answered: 0,
        retries: 0,
        reconnects: 0,
        violations: Vec::new(),
    };
    let mut it = nets.iter().enumerate();
    let mut current = it.next();
    'reconnect: while current.is_some() {
        let Ok(mut conn) = RouteClient::connect(addr) else {
            // Drain has begun and the listener is gone; every request
            // still outstanding was answered-by-closure.
            return tally;
        };
        while let Some((i, net)) = current {
            let request = RouteRequest {
                id: client * 1_000_000 + i as u64,
                net: net.clone(),
                deadline_ms: None,
            };
            match conn.route_with_retry(&request, &policy) {
                Ok((reply, spent)) => {
                    tally.retries += u64::from(spent);
                    match reply.get("error").and_then(Json::as_str) {
                        None => {
                            if reply.get("id").and_then(Json::as_u64) != Some(request.id) {
                                tally.violations.push(format!(
                                    "accepted a reply whose id does not match the one \
                                     outstanding request: {}",
                                    reply.render()
                                ));
                            } else {
                                tally.answered += 1;
                            }
                            current = it.next();
                        }
                        Some("shutting-down") => return tally,
                        // The server announced it is closing this
                        // connection; retry on a fresh one.
                        Some("evicted") => {
                            tally.reconnects += 1;
                            continue 'reconnect;
                        }
                        // Retry budget exhausted on overload: terminal
                        // for this request, not a violation.
                        Some("overloaded") => current = it.next(),
                        Some(other) => {
                            tally.violations.push(format!(
                                "unexpected error vocabulary `{other}`: {}",
                                reply.render()
                            ));
                            current = it.next();
                        }
                    }
                }
                // Torn frame, corrupted bytes, or a hard close — the
                // connection is observably dead, which is exactly the
                // "or its connection closed" arm of the contract.
                Err(_) => {
                    tally.reconnects += 1;
                    continue 'reconnect;
                }
            }
        }
    }
    tally
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The satellite drain-under-chaos test: a fixed-seed soak must
    /// pass every crash-only invariant, and must actually have injected
    /// faults while doing so.
    #[test]
    fn fixed_seed_soak_holds_every_invariant() {
        let report = chaos_soak(&ChaosSoakConfig {
            clients: 3,
            nets_per_client: 30,
            run_for: Duration::from_millis(150),
            ..ChaosSoakConfig::default()
        });
        assert!(
            report.is_clean(),
            "soak violations:\n{}",
            report.summary()
        );
        assert!(report.chaos_injected > 0);
        assert!(report.answered > 0, "{}", report.summary());
        let text = report.summary();
        assert!(text.contains("all crash-only invariants held"));
    }

    /// The report renders violations loudly.
    #[test]
    fn report_summary_surfaces_violations() {
        let report = ChaosSoakReport {
            seed: 1,
            answered: 0,
            retries: 0,
            reconnects: 0,
            responses: 2,
            served_by_sum: 1,
            rejected: 0,
            evicted: 0,
            chaos_injected: 0,
            drain_ms: 0,
            violations: vec!["rung ledger does not balance".to_string()],
        };
        assert!(!report.is_clean());
        assert!(report.summary().contains("VIOLATION: rung ledger"));
    }
}
