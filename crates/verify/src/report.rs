//! Counterexample and report types: what the harness says when a fast
//! path and its oracle disagree — and when they don't.

use std::fmt;

use patlabor::Net;
use patlabor_pareto::Cost;

/// One fast-path/oracle pairing of the differential matrix (DESIGN.md
/// §11). Every production shortcut the router takes is listed here with
/// the slower reference computation it must be indistinguishable from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathPair {
    /// LUT dot-product query vs a fresh numeric DW enumeration on the
    /// instance — the exactness claim of the whole table machinery.
    LutVsNumericDw,
    /// Cache-replayed winning ids (and the warm second route) vs a
    /// cache-disabled full query.
    CachedVsUncached,
    /// `route_batch` at N threads vs the serial per-net loop.
    BatchVsSerial,
    /// Metamorphic invariance: the frontier costs of every D4 image and
    /// a translated copy vs the base net's.
    D4Translation,
    /// The v4 table after a `write_to`/`read_from` round trip vs the
    /// in-memory original.
    SaveLoadRoundTrip,
    /// The zero-copy mmap-backed table (`open_mmap`) vs the owned
    /// in-memory table it was saved from: candidate lookup, scoring and
    /// the materialized witness trees must be identical — the borrowed
    /// arenas are the same bytes, so any divergence indicts the mapped
    /// serving path (alignment, bounds, eytzinger index rebuild).
    MmapVsOwned,
    /// The degradation ladder with its primary rung forced off by a
    /// `FaultPlane` injection: in-table degrees must fall to the
    /// numeric-DW rung and reproduce the healthy LUT frontier exactly;
    /// out-of-table degrees must fall to the baseline rung and serve
    /// valid, cost-consistent, mutually non-dominated trees.
    FallbackParity,
    /// The serve daemon's wire round trip vs an in-process route on a
    /// cache-disabled clone of the daemon's engine: the framed reply
    /// must be *byte-identical* to the locally-serialized
    /// `result_to_json` of the direct call — frontier, provenance,
    /// trace and all. Any byte of daylight indicts the transport
    /// (framing, JSON round trip, session plumbing), never the router.
    ServedVsDirect,
    /// ECO delta rerouting vs a fresh route of the mutated net: for
    /// every delta kind (move-pin, add/remove-sink, translate,
    /// blockage), `Engine::reroute` of the prior outcome must produce
    /// the frontier a from-scratch route of the edited net produces —
    /// whether the edit preserved the congruence class (winner-id
    /// replay) or broke it (ladder fallback). Checked serially and
    /// through `route_batch_deltas` at N threads.
    DeltaVsFresh,
}

impl PathPair {
    /// Every pair, in the order the harness checks them.
    pub const ALL: [PathPair; 9] = [
        PathPair::LutVsNumericDw,
        PathPair::CachedVsUncached,
        PathPair::D4Translation,
        PathPair::SaveLoadRoundTrip,
        PathPair::MmapVsOwned,
        PathPair::FallbackParity,
        PathPair::ServedVsDirect,
        PathPair::DeltaVsFresh,
        PathPair::BatchVsSerial,
    ];

    /// Stable machine-readable label (CI greps for these).
    pub fn label(self) -> &'static str {
        match self {
            PathPair::LutVsNumericDw => "lut-vs-numeric-dw",
            PathPair::CachedVsUncached => "cached-vs-uncached",
            PathPair::BatchVsSerial => "batch-vs-serial",
            PathPair::D4Translation => "d4-translation",
            PathPair::SaveLoadRoundTrip => "save-load-roundtrip",
            PathPair::MmapVsOwned => "mmap-vs-owned",
            PathPair::FallbackParity => "fallback-parity",
            PathPair::ServedVsDirect => "served-vs-direct",
            PathPair::DeltaVsFresh => "delta-vs-fresh",
        }
    }

    /// Human description of the fast path under test.
    pub fn fast_path(self) -> &'static str {
        match self {
            PathPair::LutVsNumericDw => "LUT dot-product query",
            PathPair::CachedVsUncached => "frontier-cache replay",
            PathPair::BatchVsSerial => "lock-free route_batch",
            PathPair::D4Translation => "route of a congruent image",
            PathPair::SaveLoadRoundTrip => "reloaded v4 table",
            PathPair::MmapVsOwned => "mmap-backed zero-copy table",
            PathPair::FallbackParity => "LUT-off degradation ladder",
            PathPair::ServedVsDirect => "serve-daemon wire round trip",
            PathPair::DeltaVsFresh => "ECO delta reroute (winner-id replay)",
        }
    }

    /// Human description of the reference oracle.
    pub fn oracle(self) -> &'static str {
        match self {
            PathPair::LutVsNumericDw => "fresh numeric DW enumeration",
            PathPair::CachedVsUncached => "cache-disabled full query",
            PathPair::BatchVsSerial => "serial per-net routing loop",
            PathPair::D4Translation => "route of the base net",
            PathPair::SaveLoadRoundTrip => "in-memory built table",
            PathPair::MmapVsOwned => "owned-arena table query",
            PathPair::FallbackParity => "healthy-table route / tree invariants",
            PathPair::ServedVsDirect => "in-process engine route, serialized locally",
            PathPair::DeltaVsFresh => "fresh route of the edited net",
        }
    }
}

impl fmt::Display for PathPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A minimized, replayable divergence between a fast path and its oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Which fast/slow pairing diverged.
    pub pair: PathPair,
    /// The corpus seed — `patlabor verify --seed <seed>` replays the run.
    pub seed: u64,
    /// Index of the diverging net in the seeded corpus.
    pub net_index: usize,
    /// Degree of the corpus net before shrinking.
    pub original_degree: usize,
    /// The minimized diverging net (equals the corpus net when the pair
    /// is not shrinkable, e.g. batch-vs-serial).
    pub net: Net,
    /// Accepted shrink steps that led from the corpus net to `net`.
    pub shrink_steps: usize,
    /// Frontier costs the fast path produced on `net`.
    pub fast: Vec<Cost>,
    /// Frontier costs the oracle produced on `net`.
    pub reference: Vec<Cost>,
    /// Pair-specific context: the D4 image that broke, the thread count,
    /// a `RouteError`, ...
    pub detail: String,
}

impl Counterexample {
    /// The symmetric difference of the two frontiers' cost sets:
    /// `(fast − oracle, oracle − fast)`.
    pub fn cost_symmetric_difference(&self) -> (Vec<Cost>, Vec<Cost>) {
        let only_fast = self
            .fast
            .iter()
            .filter(|c| !self.reference.contains(c))
            .copied()
            .collect();
        let only_reference = self
            .reference
            .iter()
            .filter(|c| !self.fast.contains(c))
            .copied()
            .collect();
        (only_fast, only_reference)
    }

    /// The net in the CLI net-list format (`x,y` pins, source first), so
    /// the counterexample pastes straight into a `patlabor route` file.
    pub fn net_line(&self) -> String {
        let pins: Vec<String> = self
            .net
            .pins()
            .iter()
            .map(|p| format!("{},{}", p.x, p.y))
            .collect();
        pins.join(" ")
    }
}

fn costs_line(costs: &[Cost]) -> String {
    if costs.is_empty() {
        return "(empty frontier)".to_string();
    }
    costs
        .iter()
        .map(|c| format!("(w={}, d={})", c.wirelength, c.delay))
        .collect::<Vec<_>>()
        .join(" ")
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "divergence on pair {}: {} vs {}",
            self.pair,
            self.pair.fast_path(),
            self.pair.oracle()
        )?;
        writeln!(
            f,
            "  corpus:      seed {:#x}, net #{} (degree {})",
            self.seed, self.net_index, self.original_degree
        )?;
        writeln!(
            f,
            "  minimized:   degree {} after {} accepted shrink steps",
            self.net.degree(),
            self.shrink_steps
        )?;
        writeln!(f, "  net:         {}", self.net_line())?;
        writeln!(f, "  fast:        {}", costs_line(&self.fast))?;
        writeln!(f, "  oracle:      {}", costs_line(&self.reference))?;
        let (only_fast, only_reference) = self.cost_symmetric_difference();
        writeln!(f, "  only fast:   {}", costs_line(&only_fast))?;
        writeln!(f, "  only oracle: {}", costs_line(&only_reference))?;
        if !self.detail.is_empty() {
            writeln!(f, "  detail:      {}", self.detail)?;
        }
        write!(
            f,
            "  replay:      patlabor verify --seed {:#x} (net index {})",
            self.seed, self.net_index
        )
    }
}

/// Per-pair tally of how many nets a check covered before the run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckSummary {
    /// The fast/slow pairing.
    pub pair: PathPair,
    /// Nets (or, for batch-vs-serial, batch slots) compared.
    pub nets_checked: usize,
}

/// The outcome of one harness run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// The corpus seed the run used.
    pub seed: u64,
    /// Nets in the corpus.
    pub corpus_size: usize,
    /// Per-pair coverage tallies.
    pub checks: Vec<CheckSummary>,
    /// The first divergence, minimized — `None` on a clean run.
    pub counterexample: Option<Counterexample>,
    /// Aggregated degradation-ladder outcomes from the fault sweep —
    /// `None` unless the run registered faults or a deadline.
    pub resilience: Option<patlabor::ResilienceReport>,
}

impl VerifyReport {
    /// Whether every checked pair agreed.
    pub fn is_clean(&self) -> bool {
        self.counterexample.is_none()
    }

    /// Multi-line human summary (the CLI's success output).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "verify: seed {:#x}, {} corpus nets\n",
            self.seed, self.corpus_size
        );
        for check in &self.checks {
            out.push_str(&format!(
                "  {:<22} {:>6} checked   ({} vs {})\n",
                check.pair.label(),
                check.nets_checked,
                check.pair.fast_path(),
                check.pair.oracle()
            ));
        }
        if let Some(resilience) = &self.resilience {
            out.push_str(&format!("  fault sweep: {resilience}\n"));
        }
        match &self.counterexample {
            None => out.push_str("all fast paths agree with their oracles\n"),
            Some(cx) => {
                out.push_str(&cx.to_string());
                out.push('\n');
            }
        }
        out
    }
}

/// The outcome of the mutation-smoke mode: did the harness catch a
/// deliberately planted table corruption?
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmokeReport {
    /// What was planted (degree, pool row, delta).
    pub mutation: String,
    /// The counterexample the harness produced — `None` means the oracle
    /// machinery itself is broken (it missed a real corruption).
    pub caught: Option<Counterexample>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use patlabor::Point;

    fn sample() -> Counterexample {
        Counterexample {
            pair: PathPair::LutVsNumericDw,
            seed: 0xbeef,
            net_index: 17,
            original_degree: 5,
            net: Net::new(vec![Point::new(0, 0), Point::new(3, 1), Point::new(2, 4)])
                .expect("valid net"),
            shrink_steps: 9,
            fast: vec![Cost::new(9, 5), Cost::new(11, 4)],
            reference: vec![Cost::new(9, 5), Cost::new(10, 4)],
            detail: String::new(),
        }
    }

    #[test]
    fn symmetric_difference_splits_both_ways() {
        let cx = sample();
        let (fast, reference) = cx.cost_symmetric_difference();
        assert_eq!(fast, vec![Cost::new(11, 4)]);
        assert_eq!(reference, vec![Cost::new(10, 4)]);
    }

    #[test]
    fn display_names_pair_seed_net_and_difference() {
        let text = sample().to_string();
        assert!(text.contains("lut-vs-numeric-dw"));
        assert!(text.contains("seed 0xbeef"));
        assert!(text.contains("net #17"));
        assert!(text.contains("0,0 3,1 2,4"));
        assert!(text.contains("only fast:   (w=11, d=4)"));
        assert!(text.contains("only oracle: (w=10, d=4)"));
        assert!(text.contains("patlabor verify --seed 0xbeef"));
    }

    #[test]
    fn net_line_is_cli_parseable_format() {
        assert_eq!(sample().net_line(), "0,0 3,1 2,4");
    }

    #[test]
    fn pair_labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            PathPair::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), PathPair::ALL.len());
    }

    #[test]
    fn report_summary_lists_checks_and_verdict() {
        let report = VerifyReport {
            seed: 7,
            corpus_size: 100,
            checks: vec![CheckSummary {
                pair: PathPair::CachedVsUncached,
                nets_checked: 100,
            }],
            counterexample: None,
            resilience: None,
        };
        assert!(report.is_clean());
        let text = report.summary();
        assert!(text.contains("cached-vs-uncached"));
        assert!(text.contains("all fast paths agree"));
    }
}
