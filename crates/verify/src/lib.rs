//! Differential verification harness for the PatLabor router.
//!
//! The router is built out of fast paths that each claim to be
//! indistinguishable from a slower reference computation: the LUT
//! dot-product query from a fresh numeric DW enumeration, the frontier
//! cache from a cache-disabled query, the lock-free batch driver from a
//! serial loop, a routed net from its D4/translated images, the reloaded
//! v3 table from the in-memory original. Unit tests pin each claim on a
//! handful of hand-written nets; this crate cross-validates all of them
//! on a seeded corpus of hundreds of random nets and reports the *first
//! divergence* as a minimized, replayable counterexample.
//!
//! The harness also verifies **itself**: [`mutation_smoke`] plants a
//! single corrupted cost row in an otherwise healthy table (via
//! [`LookupTable::corrupt_cost_row`]) and asserts that the run catches
//! it. An oracle that cannot detect a known-bad table is worse than no
//! oracle — it manufactures confidence.
//!
//! Entry points: [`verify`] (build tables, run every pair), [`verify_with_table`]
//! (caller-supplied tables, e.g. loaded from disk), [`mutation_smoke`].
//! The `patlabor verify` CLI subcommand wraps them.

#![forbid(unsafe_code)]

mod chaos;
mod report;
mod shrink;

pub use chaos::{chaos_soak, ChaosSoakConfig, ChaosSoakReport};
pub use report::{CheckSummary, Counterexample, PathPair, SmokeReport, VerifyReport};
pub use shrink::shrink_net;

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Duration;

use patlabor::{
    DeltaJob, DeltaKind, Engine, Fault, FaultKind, FaultPlane, FaultScope, Net, NetDelta,
    PatLabor, Point, ResilienceConfig, ResilienceReport, RouterConfig, Session, VirtualClock,
};
use patlabor_serve::{result_to_json, RouteClient, RouteRequest, ServeConfig, Server};
use patlabor_dw::{numeric, DwConfig};
use patlabor_lut::{LookupTable, LutBuilder};
use patlabor_netgen::{clustered_net, uniform_net};
use patlabor_pareto::Cost;
use rand::rngs::StdRng;
use rand::SeedableRng;

use patlabor::pipeline::{RouteOutcome, RouteResult, RouteSource};
use patlabor::CacheConfig;

/// Predicate evaluations the shrinker may spend per counterexample.
const SHRINK_EVAL_BUDGET: usize = 4_000;

/// Harness configuration: corpus shape plus per-pair scope knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyConfig {
    /// Corpus seed; the whole run is a pure function of the config.
    pub seed: u64,
    /// Number of corpus nets.
    pub nets: usize,
    /// Smallest corpus degree (≥ 3; degree 2 is a closed form).
    pub min_degree: usize,
    /// Largest corpus degree. Degrees above λ exercise the local-search
    /// path (covered by the cache and batch pairs only — local search is
    /// neither table-backed nor D4-invariant by contract).
    pub max_degree: usize,
    /// λ of the freshly built tables ([`verify`] only; λ ≤ 6 builds in
    /// seconds, larger tables should be built offline and passed to
    /// [`verify_with_table`]).
    pub lambda: u8,
    /// Largest degree the numeric-DW oracle re-enumerates (the oracle is
    /// exponential in degree; 6 keeps a 500-net corpus in seconds).
    pub dw_max_degree: usize,
    /// Worker threads for the batch-vs-serial pair.
    pub threads: usize,
    /// Pin coordinates are drawn from `[0, span)²`.
    pub span: i64,
    /// Whether to minimize the first divergence before reporting it.
    pub shrink: bool,
    /// Injected faults for the resilience sweep. When non-empty, the
    /// whole corpus is replayed through a fault-armed router and the
    /// ladder's service invariants are checked (zero aborts, every `Ok`
    /// a valid consistent frontier, every failure a structured error).
    pub faults: FaultPlane,
    /// Per-net deadline for the resilience sweep, driven by a
    /// [`VirtualClock`] so only injected stage delays consume time.
    pub deadline_ms: Option<u64>,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            seed: 0x5eed,
            nets: 500,
            min_degree: 3,
            max_degree: 8,
            lambda: 6,
            dw_max_degree: 6,
            threads: 4,
            span: 48,
            shrink: true,
            faults: FaultPlane::default(),
            deadline_ms: None,
        }
    }
}

impl VerifyConfig {
    /// Largest degree checked against the numeric-DW oracle.
    fn dw_cap(&self) -> usize {
        self.dw_max_degree.min(self.lambda as usize)
    }
}

/// The seeded corpus: degrees round-robin over
/// `min_degree..=max_degree`, pin clouds alternating between uniform and
/// clustered placement (the two shapes real placers produce). Pure
/// function of the config — two calls yield identical nets.
pub fn corpus(config: &VerifyConfig) -> Vec<Net> {
    assert!(
        config.min_degree >= 3 && config.max_degree >= config.min_degree,
        "corpus degrees must satisfy 3 <= min_degree <= max_degree"
    );
    assert!(config.span >= 2, "corpus span must be at least 2");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let degree_count = config.max_degree - config.min_degree + 1;
    (0..config.nets)
        .map(|i| {
            let degree = config.min_degree + i % degree_count;
            if config.span >= 16 && i % 3 == 2 {
                clustered_net(&mut rng, degree, config.span, 1 + i % 3)
            } else {
                uniform_net(&mut rng, degree, config.span)
            }
        })
        .collect()
}

/// Builds λ tables per `config` and runs the full differential matrix.
pub fn verify(config: &VerifyConfig) -> VerifyReport {
    verify_with_table(LutBuilder::new(config.lambda).build(), config)
}

/// Runs the full differential matrix against caller-supplied tables
/// (loaded from disk, deliberately corrupted, ...). Checks stop at the
/// first divergence, which is minimized (when `config.shrink`) and
/// returned in the report.
pub fn verify_with_table(table: LookupTable, config: &VerifyConfig) -> VerifyReport {
    let mut counts = [0usize; PathPair::ALL.len()];
    let harness = match Harness::new(table, config) {
        Ok(h) => h,
        Err(cx) => return finish(config, 0, counts, Some(cx), None),
    };
    let nets = corpus(config);
    let mut serial: Vec<RouteResult> = Vec::with_capacity(nets.len());

    for (index, net) in nets.iter().enumerate() {
        for (slot, &pair) in PathPair::ALL.iter().enumerate() {
            if pair == PathPair::BatchVsSerial {
                continue; // whole-corpus check, runs after the loop
            }
            if !harness.in_scope(pair, net) {
                continue;
            }
            counts[slot] += 1;
            // The cache pair doubles as the serial reference for the
            // batch pair, so its route result is kept either way.
            let divergence = if pair == PathPair::CachedVsUncached {
                let (result, divergence) = harness.cached_vs_uncached(net);
                serial.push(result);
                divergence
            } else {
                harness.divergence(pair, net)
            };
            if divergence.is_some() {
                let cx = harness.minimized(pair, index, net);
                return finish(config, nets.len(), counts, Some(cx), None);
            }
        }
    }

    // Pair (c): the work-stealing batch driver vs the serial loop above,
    // swept across thread counts — determinism must hold under every
    // steal schedule, including oversubscribed ones (more workers than
    // hardware threads, maximal preemption) and the configured count.
    let batch_slot = PathPair::ALL
        .iter()
        .position(|&p| p == PathPair::BatchVsSerial)
        .expect("BatchVsSerial is in ALL");
    let configured = config.threads.max(1);
    let mut thread_sweep = vec![1, 2, configured, configured + 3];
    thread_sweep.sort_unstable();
    thread_sweep.dedup();
    for threads in thread_sweep {
        let batch = harness.cached.route_batch(&nets, threads);
        for (index, (batched, serial)) in batch.iter().zip(serial.iter()).enumerate() {
            counts[batch_slot] += 1;
            if let Some((fast, reference, why)) = result_mismatch(batched, serial) {
                let cx = Counterexample {
                    pair: PathPair::BatchVsSerial,
                    seed: config.seed,
                    net_index: index,
                    original_degree: nets[index].degree(),
                    net: nets[index].clone(),
                    shrink_steps: 0, // a 1-net batch degrades to the serial path
                    fast,
                    reference,
                    detail: format!("{threads} worker threads; {why}"),
                };
                return finish(config, nets.len(), counts, Some(cx), None);
            }
        }
    }

    // ECO pair, batch half: the per-net loop above already held every
    // serial `reroute` to the fresh-route oracle; here the same deltas
    // go through `route_batch_deltas` at 1 and N threads and must agree
    // slot-for-slot — replay determinism under every steal schedule.
    let delta_slot = PathPair::ALL
        .iter()
        .position(|&p| p == PathPair::DeltaVsFresh)
        .expect("DeltaVsFresh is in ALL");
    let mut jobs = Vec::new();
    let mut job_origin = Vec::new();
    for (index, net) in nets.iter().enumerate() {
        if !harness.in_scope(PathPair::DeltaVsFresh, net) {
            continue;
        }
        for (name, kind) in delta_kinds(net) {
            jobs.push(DeltaJob {
                delta: NetDelta::new(net.clone(), kind),
                prior_edits: 0,
                session: Session::default(),
            });
            job_origin.push((index, name));
        }
    }
    let engine = harness.cached.engine();
    let (serial_deltas, _) = engine.route_batch_deltas(&jobs, 1);
    let (threaded_deltas, _) = engine.route_batch_deltas(&jobs, configured.max(2));
    for (slot, (one, many)) in serial_deltas.iter().zip(&threaded_deltas).enumerate() {
        counts[delta_slot] += 1;
        if let Some((fast, reference, why)) = result_mismatch(many, one) {
            let (index, name) = job_origin[slot];
            let cx = Counterexample {
                pair: PathPair::DeltaVsFresh,
                seed: config.seed,
                net_index: index,
                original_degree: nets[index].degree(),
                net: nets[index].clone(),
                shrink_steps: 0, // thread schedules are not net-shrinkable
                fast,
                reference,
                detail: format!(
                    "route_batch_deltas at {} threads vs serial, delta {name}: {why}",
                    configured.max(2)
                ),
            };
            return finish(config, nets.len(), counts, Some(cx), None);
        }
    }

    // Resilience sweep: replay the corpus through a fault-armed router
    // and hold the degradation ladder to its service invariants.
    let mut resilience = None;
    if !config.faults.is_empty() || config.deadline_ms.is_some() {
        match harness.resilience_sweep(&nets, config) {
            Ok(report) => resilience = Some(report),
            Err(cx) => return finish(config, nets.len(), counts, Some(*cx), None),
        }
    }

    finish(config, nets.len(), counts, None, resilience)
}

/// Plants a single-row table corruption that provably flips at least one
/// corpus net's query, then runs the full harness against the corrupted
/// table. `caught: Some(..)` proves the oracle machinery detects real
/// table damage; `None` means the harness itself is broken.
pub fn mutation_smoke(config: &VerifyConfig) -> SmokeReport {
    mutation_smoke_with_table(LutBuilder::new(config.lambda).build(), config)
}

/// [`mutation_smoke`] against caller-supplied (healthy) tables.
pub fn mutation_smoke_with_table(table: LookupTable, config: &VerifyConfig) -> SmokeReport {
    let dw_cap = config.dw_cap();
    for net in corpus(config) {
        if net.degree() < 3 || net.degree() > dw_cap {
            continue;
        }
        let Some(class) = table.classify(&net) else {
            continue;
        };
        let Some(ids) = table.candidate_ids(&class) else {
            continue;
        };
        let healthy = table.score_candidates(&class, ids);
        // Corrupt each frontier winner in turn until one provably shifts
        // this net's scored frontier (a tie may mask a single victim).
        for &(_, victim) in &healthy {
            let mut mutated = table.clone();
            if !mutated.corrupt_cost_row(class.degree(), victim, 1) {
                continue;
            }
            let corrupted = mutated
                .candidate_ids(&class)
                .map(|ids| mutated.score_candidates(&class, ids))
                .unwrap_or_default();
            let differs = healthy.iter().map(|&(c, _)| c).ne(corrupted.iter().map(|&(c, _)| c));
            if differs {
                let mutation = format!(
                    "degree-{} pool row {victim}: every cost-row multiplicity +1",
                    class.degree()
                );
                let caught = verify_with_table(mutated, config).counterexample;
                return SmokeReport { mutation, caught };
            }
        }
    }
    SmokeReport {
        mutation: "no corruptible winner found (degenerate corpus)".to_string(),
        caught: None,
    }
}

fn finish(
    config: &VerifyConfig,
    corpus_size: usize,
    counts: [usize; PathPair::ALL.len()],
    counterexample: Option<Counterexample>,
    resilience: Option<ResilienceReport>,
) -> VerifyReport {
    VerifyReport {
        seed: config.seed,
        corpus_size,
        checks: PathPair::ALL
            .iter()
            .zip(counts)
            .map(|(&pair, nets_checked)| CheckSummary { pair, nets_checked })
            .collect(),
        counterexample,
        resilience,
    }
}

/// One fast-vs-reference disagreement, before counterexample packaging.
struct Divergence {
    fast: Vec<Cost>,
    reference: Vec<Cost>,
    detail: String,
}

/// The routers and tables one run checks against each other.
struct Harness {
    /// The table under test (shared by both routers).
    table: LookupTable,
    /// The same table after a `write_to`/`read_from` round trip.
    loaded: LookupTable,
    /// The same table served zero-copy from a saved file via
    /// `open_mmap` — borrowed arenas, not owned copies.
    mapped: LookupTable,
    /// Production-shaped router, minus the degradation ladder: cache
    /// enabled, local search above λ, strict resilience so table damage
    /// surfaces as route errors instead of being absorbed by a fallback
    /// rung (a differential oracle must see the damage, not mask it).
    cached: PatLabor,
    /// The cache-disabled reference router (also strict).
    uncached: PatLabor,
    /// The ladder under test: full resilience with the primary rung
    /// forced off by an injected missing-degree fault, so in-table nets
    /// serve via numeric DW and out-of-table nets via the baseline.
    fallback: PatLabor,
    /// The in-process side of the served-vs-direct pair: a
    /// cache-disabled engine over the same table the daemon serves, so
    /// both sides are pure functions of the net and the wire reply can
    /// be demanded byte-identical (a shared cache would make provenance
    /// depend on call order).
    serve_engine: Engine,
    /// The wire side: a client connected to `server`. `RefCell` because
    /// the harness checks pairs serially but through `&self`. Declared
    /// before `server` so the connection closes before the daemon's
    /// `Drop` drains and joins.
    wire: RefCell<RouteClient>,
    /// Monotone wire correlation ids (shrinking re-sends nets, so ids
    /// cannot be derived from the corpus index).
    wire_id: Cell<u64>,
    /// The daemon under test, serving `serve_engine`'s twin over the
    /// framed socket protocol for the whole run. Held for its `Drop`
    /// (drain + join); never read.
    _server: Server,
    seed: u64,
    lambda: usize,
    dw_cap: usize,
    shrink: bool,
}

impl Harness {
    /// Builds the routers and performs the construction-time half of the
    /// save/load pair: serialize, reload, and demand the reloaded table
    /// be structurally identical and re-serialize to identical bytes.
    // Cold constructor, called once per run — the big Err is fine here.
    #[allow(clippy::result_large_err)]
    fn new(table: LookupTable, config: &VerifyConfig) -> Result<Harness, Counterexample> {
        let roundtrip_failure = |detail: String| Counterexample {
            pair: PathPair::SaveLoadRoundTrip,
            seed: config.seed,
            net_index: 0,
            original_degree: 2,
            net: Net::new(vec![Point::new(0, 0), Point::new(1, 0)])
                .expect("two distinct pins form a net"),
            shrink_steps: 0,
            fast: Vec::new(),
            reference: Vec::new(),
            detail,
        };
        let mut bytes = Vec::new();
        table
            .write_to(&mut bytes)
            .map_err(|e| roundtrip_failure(format!("serializing the table failed: {e}")))?;
        let loaded = LookupTable::read_from(&bytes[..])
            .map_err(|e| roundtrip_failure(format!("reloading the just-written table failed: {e}")))?;
        if loaded != table {
            return Err(roundtrip_failure(
                "reloaded table differs structurally from the in-memory original".to_string(),
            ));
        }
        let mut rewritten = Vec::new();
        loaded
            .write_to(&mut rewritten)
            .map_err(|e| roundtrip_failure(format!("re-serializing the reloaded table failed: {e}")))?;
        if rewritten != bytes {
            return Err(roundtrip_failure(
                "serialization is not byte-deterministic across a round trip".to_string(),
            ));
        }
        // Construction-time half of the mmap pair: save to a file, open
        // it zero-copy, and demand structural equality plus the mapped
        // backing. The file is removed immediately — the mapping must
        // keep itself alive without it.
        let mmap_failure = |detail: String| Counterexample {
            pair: PathPair::MmapVsOwned,
            ..roundtrip_failure(detail)
        };
        let path = std::env::temp_dir().join(format!(
            "patlabor_verify_mmap_{:x}_{}.plut",
            config.seed,
            std::process::id()
        ));
        std::fs::write(&path, &bytes)
            .map_err(|e| mmap_failure(format!("writing the table file failed: {e}")))?;
        let mapped = LookupTable::open_mmap(&path).map_err(|e| {
            std::fs::remove_file(&path).ok();
            mmap_failure(format!("zero-copy open of the just-saved table failed: {e}"))
        })?;
        std::fs::remove_file(&path).ok();
        if mapped.backing() != patlabor_lut::Backing::Mapped {
            return Err(mmap_failure(format!(
                "open_mmap produced a {} table, not a mapped one",
                mapped.backing()
            )));
        }
        if mapped != table {
            return Err(mmap_failure(
                "mmap-backed table differs structurally from the in-memory original".to_string(),
            ));
        }
        let strict = RouterConfig {
            resilience: ResilienceConfig::strict(),
            ..RouterConfig::default()
        };
        let lut_off = FaultPlane::seeded(config.seed).with_fault(Fault {
            kind: FaultKind::MissingDegree,
            scope: FaultScope::Primary,
            probability: 1.0,
        });
        // The served-vs-direct pair: one daemon for the whole run,
        // serving the table under test with the cache disabled on both
        // sides (so wire and direct replies are pure functions of the
        // net and can be demanded byte-identical). Zero coalescing
        // window — transport is under test here, not batching.
        let serve_failure = |detail: String| Counterexample {
            pair: PathPair::ServedVsDirect,
            ..roundtrip_failure(detail)
        };
        let serve_engine =
            Engine::with_table(table.clone()).with_cache(CacheConfig::disabled());
        let server = patlabor_serve::serve(
            serve_engine.clone(),
            ServeConfig {
                threads: 1,
                window: Duration::ZERO,
                http_addr: None,
                ..ServeConfig::default()
            },
        )
        .map_err(|e| serve_failure(format!("starting the serve daemon failed: {e}")))?;
        let wire = RouteClient::connect(server.addr())
            .map_err(|e| serve_failure(format!("connecting to the serve daemon failed: {e}")))?;
        Ok(Harness {
            cached: PatLabor::with_table_and_config(table.clone(), strict.clone()),
            uncached: PatLabor::with_table_and_config(table.clone(), strict)
                .with_cache(CacheConfig::disabled()),
            fallback: PatLabor::with_table(table.clone())
                .with_cache(CacheConfig::disabled())
                .with_faults(lut_off),
            serve_engine,
            wire: RefCell::new(wire),
            wire_id: Cell::new(0),
            _server: server,
            lambda: table.lambda() as usize,
            table,
            loaded,
            mapped,
            seed: config.seed,
            dw_cap: config.dw_cap(),
            shrink: config.shrink,
        })
    }

    /// Whether `pair`'s oracle applies to `net` (degree scoping).
    fn in_scope(&self, pair: PathPair, net: &Net) -> bool {
        let d = net.degree();
        match pair {
            // The DW oracle is exponential in degree; capped explicitly.
            PathPair::LutVsNumericDw => (3..=self.dw_cap).contains(&d),
            // Cache, batch and the wire round trip cover every degree,
            // local search included — the daemon must be transparent
            // for whatever the engine can route.
            PathPair::CachedVsUncached | PathPair::BatchVsSerial | PathPair::ServedVsDirect => true,
            // Exact-path-only invariants: local search (> λ) promises
            // neither D4 invariance nor table-backed answers.
            PathPair::D4Translation | PathPair::SaveLoadRoundTrip | PathPair::MmapVsOwned => {
                (3..=self.lambda).contains(&d)
            }
            // In-table degrees need the DW oracle's cap; out-of-table
            // degrees exercise the baseline rung instead. Degrees in
            // between (dw_cap < d ≤ λ) have no affordable oracle.
            PathPair::FallbackParity => (3..=self.dw_cap).contains(&d) || d > self.lambda,
            // Winner-id replay exists only for table-backed degrees; the
            // deltas themselves may push the edited net out of λ, which
            // the pair covers via the ladder fallback.
            PathPair::DeltaVsFresh => (3..=self.lambda).contains(&d),
        }
    }

    /// Checks one pair on one net; `None` means the pair agrees.
    fn divergence(&self, pair: PathPair, net: &Net) -> Option<Divergence> {
        if !self.in_scope(pair, net) {
            return None; // shrink candidates can leave a pair's scope
        }
        match pair {
            PathPair::LutVsNumericDw => self.lut_vs_dw(net),
            PathPair::CachedVsUncached => self.cached_vs_uncached(net).1,
            PathPair::D4Translation => self.d4_translation(net),
            PathPair::SaveLoadRoundTrip => self.save_load(net),
            PathPair::MmapVsOwned => self.mmap_vs_owned(net),
            PathPair::FallbackParity => self.fallback_parity(net),
            PathPair::ServedVsDirect => self.served_vs_direct(net),
            PathPair::DeltaVsFresh => self.delta_vs_fresh(net),
            PathPair::BatchVsSerial => None, // whole-corpus pair, not per-net
        }
    }

    /// Pair (a): the production exact path vs a fresh numeric DW run.
    fn lut_vs_dw(&self, net: &Net) -> Option<Divergence> {
        let reference = numeric::pareto_frontier(net, &DwConfig::default()).cost_vec();
        match self.uncached.route(net) {
            Ok(outcome) => {
                let fast = outcome.frontier.cost_vec();
                (fast != reference).then(|| Divergence {
                    fast,
                    reference,
                    detail: String::new(),
                })
            }
            Err(e) => Some(Divergence {
                fast: Vec::new(),
                reference,
                detail: format!("router error on the fast path: {e}"),
            }),
        }
    }

    /// Pair (b): route three times — cache-disabled (reference), first
    /// cached call (fills the cache), second cached call (replays the
    /// cached ids). All three frontiers must be identical, witness trees
    /// included. Also returns the first cached result as the serial
    /// reference for the batch pair.
    fn cached_vs_uncached(&self, net: &Net) -> (RouteResult, Option<Divergence>) {
        let reference = self.uncached.route(net);
        let first = self.cached.route(net);
        let replay = self.cached.route(net);
        let legs = [(&first, "cache-filling"), (&replay, "cache-replay")];
        let divergence = legs.into_iter().find_map(|(result, leg)| {
            result_mismatch(result, &reference).map(|(fast, reference, why)| Divergence {
                fast,
                reference,
                detail: format!("{leg} route: {why}"),
            })
        });
        (first, divergence)
    }

    /// Pair (d): the frontier's cost set is a geometric invariant, so
    /// every D4 image and a translated copy must route to the same costs.
    fn d4_translation(&self, net: &Net) -> Option<Divergence> {
        let reference = match self.uncached.route(net) {
            Ok(outcome) => outcome.frontier.cost_vec(),
            // A base-net error is the cache pair's divergence, not ours.
            Err(_) => return None,
        };
        for (name, image) in congruent_images(net) {
            let fast = match self.uncached.route(&image) {
                Ok(outcome) => outcome.frontier.cost_vec(),
                Err(e) => {
                    return Some(Divergence {
                        fast: Vec::new(),
                        reference,
                        detail: format!("image {name}: router error: {e}"),
                    })
                }
            };
            if fast != reference {
                return Some(Divergence {
                    fast,
                    reference,
                    detail: format!("image {name}"),
                });
            }
        }
        None
    }

    /// Pair (e), per-net half: the reloaded table must look up the same
    /// candidate pool and score it to the same frontier as the original.
    /// (Structural equality is checked once at construction; this checks
    /// the query *behavior* net by net.)
    fn save_load(&self, net: &Net) -> Option<Divergence> {
        let class = self.table.classify(net)?;
        let original_ids = self.table.candidate_ids(&class);
        let reloaded_ids = self.loaded.candidate_ids(&class);
        match (original_ids, reloaded_ids) {
            (None, None) => None, // a missing pattern is the cache pair's find
            (Some(original_ids), Some(reloaded_ids)) => {
                let original = self.table.score_candidates(&class, original_ids);
                let reloaded = self.loaded.score_candidates(&class, reloaded_ids);
                (original != reloaded).then(|| Divergence {
                    fast: reloaded.iter().map(|&(c, _)| c).collect(),
                    reference: original.iter().map(|&(c, _)| c).collect(),
                    detail: "reloaded table scores a different frontier".to_string(),
                })
            }
            (original, _) => Some(Divergence {
                fast: Vec::new(),
                reference: Vec::new(),
                detail: format!(
                    "canonical pattern {:#x} present only in the {} table",
                    class.canonical_key(),
                    if original.is_some() { "in-memory" } else { "reloaded" }
                ),
            }),
        }
    }

    /// Mmap pair, per-net half: the zero-copy table must answer the full
    /// query — candidate lookup, scoring, witness materialization —
    /// identically to the owned table it was saved from. (Structural
    /// equality is checked once at construction; this checks the serving
    /// behavior over the whole corpus.)
    fn mmap_vs_owned(&self, net: &Net) -> Option<Divergence> {
        let owned = self.table.query(net)?;
        match self.mapped.query(net) {
            Some(mapped) => (mapped != owned).then(|| Divergence {
                fast: mapped.cost_vec(),
                reference: owned.cost_vec(),
                detail: "mmap-backed table serves a different frontier".to_string(),
            }),
            None => Some(Divergence {
                fast: Vec::new(),
                reference: owned.cost_vec(),
                detail: "net answerable from the owned table only".to_string(),
            }),
        }
    }

    /// Pair (f): the degradation ladder with its primary rung injected
    /// away. In-table degrees must be served by the numeric-DW rung with
    /// the exact frontier costs the healthy LUT produces; out-of-table
    /// degrees must be served by the baseline rung with trees that are
    /// valid, cost-consistent, and mutually non-dominated.
    fn fallback_parity(&self, net: &Net) -> Option<Divergence> {
        let outcome = match self.fallback.route(net) {
            Ok(outcome) => outcome,
            Err(e) => {
                return Some(Divergence {
                    fast: Vec::new(),
                    reference: Vec::new(),
                    detail: format!("ladder failed with every fallback rung armed: {e}"),
                })
            }
        };
        let trace = outcome.provenance.trace;
        let source = outcome.provenance.source;
        let expected = if net.degree() <= self.dw_cap {
            RouteSource::NumericDw
        } else {
            RouteSource::Baseline
        };
        if source != expected {
            return Some(Divergence {
                fast: outcome.frontier.cost_vec(),
                reference: Vec::new(),
                detail: format!(
                    "expected the {} rung, served by {} (trace: {trace})",
                    expected.label(),
                    source.label()
                ),
            });
        }
        if !trace.degraded() {
            return Some(Divergence {
                fast: outcome.frontier.cost_vec(),
                reference: Vec::new(),
                detail: format!("injected fault left no degradation trace (trace: {trace})"),
            });
        }
        if net.degree() <= self.dw_cap {
            // Cost-only comparison: the DW rung enumerates fresh witness
            // trees that may legitimately differ from the LUT's pool.
            let reference = match self.uncached.route(net) {
                Ok(reference) => reference.frontier.cost_vec(),
                Err(e) => {
                    return Some(Divergence {
                        fast: outcome.frontier.cost_vec(),
                        reference: Vec::new(),
                        detail: format!("healthy-table reference route failed: {e}"),
                    })
                }
            };
            let fast = outcome.frontier.cost_vec();
            return (fast != reference).then(|| Divergence {
                fast,
                reference,
                detail: format!("fallback rung disagrees with the healthy LUT (trace: {trace})"),
            });
        }
        served_invariants(net, &outcome).map(|why| Divergence {
            fast: outcome.frontier.cost_vec(),
            reference: Vec::new(),
            detail: format!("{why} (trace: {trace})"),
        })
    }

    /// Served-vs-direct pair: round-trip the net through the daemon's
    /// framed socket and demand the reply byte-identical to the
    /// locally-serialized result of the same engine's in-process
    /// `route`. Costs, provenance labels, the degradation trace, JSON
    /// framing — all of it; both sides are cache-disabled pure
    /// functions, so any difference is the transport's fault.
    fn served_vs_direct(&self, net: &Net) -> Option<Divergence> {
        let id = self.wire_id.get();
        self.wire_id.set(id + 1);
        let request = RouteRequest {
            id,
            net: net.clone(),
            deadline_ms: None,
        };
        let reply = match self.wire.borrow_mut().route(&request) {
            Ok(reply) => reply,
            Err(e) => {
                return Some(Divergence {
                    fast: Vec::new(),
                    reference: Vec::new(),
                    detail: format!("wire round trip failed: {e}"),
                })
            }
        };
        let direct = self.serve_engine.route(net);
        let expected = result_to_json(id, &direct).render();
        let served = reply.render();
        (served != expected).then(|| Divergence {
            fast: wire_frontier_costs(&reply),
            reference: direct.map(|o| o.frontier.cost_vec()).unwrap_or_default(),
            detail: format!("wire reply != in-process serialization\n    wire:   {served}\n    direct: {expected}"),
        })
    }

    /// ECO pair, per-net half: route the net once, then for every delta
    /// kind `Engine::reroute` from that outcome must match a fresh,
    /// cache-disabled route of the edited net — frontier, witness trees
    /// and all. Class-preserving edits take the winner-id replay path;
    /// class-breaking ones fall through the ordinary ladder; the oracle
    /// cannot tell and demands the same answer either way.
    fn delta_vs_fresh(&self, net: &Net) -> Option<Divergence> {
        let engine = self.cached.engine();
        let prev = match engine.route(net) {
            Ok(outcome) => outcome,
            // A base-net error is the cache pair's divergence, not ours.
            Err(_) => return None,
        };
        for (name, kind) in delta_kinds(net) {
            let delta = NetDelta::new(net.clone(), kind);
            let fast = engine.reroute(&prev, &delta, Session::default());
            let reference = self.uncached.route(&delta.apply());
            if let Some((fast_costs, reference_costs, why)) = result_mismatch(&fast, &reference) {
                let via = fast
                    .as_ref()
                    .map(|o| o.provenance.source.label())
                    .unwrap_or("error");
                return Some(Divergence {
                    fast: fast_costs,
                    reference: reference_costs,
                    detail: format!("delta {name} (reroute via {via}): {why}"),
                });
            }
        }
        None
    }

    /// Replays the corpus through a fault-armed copy of the router (the
    /// batch driver, so panic isolation is under test too) and checks
    /// the ladder's service invariants: the process survives, every `Ok`
    /// slot holds a valid consistent frontier, and every failed slot
    /// holds a structured error. Time is virtual — only injected stage
    /// delays advance the clock, so deadline behavior is deterministic.
    fn resilience_sweep(
        &self,
        nets: &[Net],
        config: &VerifyConfig,
    ) -> Result<ResilienceReport, Box<Counterexample>> {
        let router = PatLabor::with_table_and_config(
            self.table.clone(),
            RouterConfig {
                resilience: ResilienceConfig {
                    deadline: config.deadline_ms.map(Duration::from_millis),
                    ..ResilienceConfig::default()
                },
                faults: config.faults.clone(),
                ..RouterConfig::default()
            },
        )
        .with_clock(Arc::new(VirtualClock::new()));
        let (results, report) = router.route_batch_with_report(nets, config.threads.max(1));
        for (index, (net, result)) in nets.iter().zip(&results).enumerate() {
            // Structured errors are legitimate sweep outcomes (e.g. an
            // all-rungs stage panic nothing can absorb); the batch
            // driver converting them to per-slot `Err` IS the invariant.
            let violation = match result {
                Ok(outcome) => served_invariants(net, outcome),
                Err(_) => None,
            };
            if let Some(why) = violation {
                return Err(Box::new(Counterexample {
                    pair: PathPair::FallbackParity,
                    seed: config.seed,
                    net_index: index,
                    original_degree: net.degree(),
                    net: net.clone(),
                    shrink_steps: 0, // fault sites are keyed to the net, not shrinkable
                    fast: result
                        .as_ref()
                        .map(|o| o.frontier.cost_vec())
                        .unwrap_or_default(),
                    reference: Vec::new(),
                    detail: format!("resilience sweep: {why}"),
                }));
            }
        }
        Ok(report)
    }

    /// Packages the first divergence: re-shrink the net while the pair
    /// still diverges, then re-evaluate on the minimized net so the
    /// reported frontiers describe what the user can replay.
    fn minimized(&self, pair: PathPair, index: usize, net: &Net) -> Counterexample {
        let (minimized, steps) = if self.shrink {
            shrink_net(net, |n| self.divergence(pair, n).is_some(), SHRINK_EVAL_BUDGET)
        } else {
            (net.clone(), 0)
        };
        let divergence = self
            .divergence(pair, &minimized)
            .expect("the shrinker only accepts nets that still diverge");
        Counterexample {
            pair,
            seed: self.seed,
            net_index: index,
            original_degree: net.degree(),
            net: minimized,
            shrink_steps: steps,
            fast: divergence.fast,
            reference: divergence.reference,
            detail: divergence.detail,
        }
    }
}

/// Invariants every served (`Ok`) outcome must satisfy regardless of
/// which rung produced it: a non-empty frontier of trees that validate
/// against the net, advertise exactly their recomputed objectives, and
/// do not dominate each other. `Some(why)` localizes the first breach.
fn served_invariants(net: &Net, outcome: &RouteOutcome) -> Option<String> {
    let costs = outcome.frontier.cost_vec();
    if costs.is_empty() {
        return Some("served an empty frontier".to_string());
    }
    for (cost, tree) in outcome.frontier.iter() {
        if let Err(e) = tree.validate(net) {
            return Some(format!("invalid witness tree at (w={}, d={}): {e}", cost.wirelength, cost.delay));
        }
        let (wirelength, delay) = tree.objectives();
        if (wirelength, delay) != (cost.wirelength, cost.delay) {
            return Some(format!(
                "advertised cost (w={}, d={}) disagrees with the tree's objectives (w={wirelength}, d={delay})",
                cost.wirelength, cost.delay
            ));
        }
    }
    for (i, a) in costs.iter().enumerate() {
        for b in &costs[i + 1..] {
            let a_dominates = a.wirelength <= b.wirelength && a.delay <= b.delay;
            let b_dominates = b.wirelength <= a.wirelength && b.delay <= a.delay;
            if a_dominates || b_dominates {
                return Some(format!(
                    "frontier is not mutually non-dominated: (w={}, d={}) vs (w={}, d={})",
                    a.wirelength, a.delay, b.wirelength, b.delay
                ));
            }
        }
    }
    None
}

/// Extracts the `(w, d)` frontier from a wire reply, for counterexample
/// rendering (byte comparison is the actual oracle).
fn wire_frontier_costs(reply: &patlabor_serve::Json) -> Vec<Cost> {
    reply
        .get("frontier")
        .and_then(|f| f.as_array())
        .map(|points| {
            points
                .iter()
                .filter_map(|p| {
                    Some(Cost::new(
                        p.get("w")?.as_i64()?,
                        p.get("d")?.as_i64()?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Compares two route results; `Some((fast_costs, reference_costs, why))`
/// when they differ. Frontier comparison is full [`PartialEq`] on the
/// Pareto sets — witness trees included — not just costs.
fn result_mismatch(
    fast: &RouteResult,
    reference: &RouteResult,
) -> Option<(Vec<Cost>, Vec<Cost>, &'static str)> {
    match (fast, reference) {
        (Ok(f), Ok(r)) => (f.frontier != r.frontier).then(|| {
            let why = if f.frontier.cost_vec() == r.frontier.cost_vec() {
                "equal costs but different witness trees"
            } else {
                "frontiers differ"
            };
            (f.frontier.cost_vec(), r.frontier.cost_vec(), why)
        }),
        (Err(f), Err(r)) => {
            (f != r).then(|| (Vec::new(), Vec::new(), "route errors differ"))
        }
        (Ok(f), Err(_)) => Some((f.frontier.cost_vec(), Vec::new(), "only the reference errored")),
        (Err(_), Ok(r)) => Some((Vec::new(), r.frontier.cost_vec(), "only the fast path errored")),
    }
}

/// One deterministic edit of every [`DeltaKind`] for `net`: a rigid
/// translate (class-preserving by construction), a last-pin nudge, a
/// sink appended outside the bounding box, a sink removal, and a
/// blockage covering the box's interior — the same vocabulary the wire
/// protocol and the CLI edits file speak.
fn delta_kinds(net: &Net) -> [(&'static str, DeltaKind); 5] {
    let pins = net.pins();
    let last = pins.len() - 1;
    let min_x = pins.iter().map(|p| p.x).min().unwrap_or(0);
    let max_x = pins.iter().map(|p| p.x).max().unwrap_or(0);
    let min_y = pins.iter().map(|p| p.y).min().unwrap_or(0);
    let max_y = pins.iter().map(|p| p.y).max().unwrap_or(0);
    [
        ("translate", DeltaKind::Translate { dx: 7, dy: -3 }),
        (
            "move-pin",
            DeltaKind::MovePin {
                index: last,
                to: Point::new(pins[last].x + 3, pins[last].y + 2),
            },
        ),
        (
            "add-sink",
            DeltaKind::AddSink {
                at: Point::new(max_x + 5, min_y - 4),
            },
        ),
        ("remove-sink", DeltaKind::RemoveSink { index: last.saturating_sub(1) }),
        (
            "blockage-mask",
            DeltaKind::BlockageMask {
                min: Point::new(min_x + 1, min_y + 1),
                max: Point::new(max_x - 1, max_y - 1),
            },
        ),
    ]
}

/// The eight D4 images of `net` plus one translated copy, labelled for
/// counterexample details. Reflections negate coordinates rather than
/// mirroring inside the bounding box — the router is translation
/// invariant, so any representative of the congruence class serves.
fn congruent_images(net: &Net) -> Vec<(String, Net)> {
    let mut images = Vec::with_capacity(9);
    for swap in [false, true] {
        for flip_x in [false, true] {
            for flip_y in [false, true] {
                let image = net.map_points(|p| {
                    let (mut x, mut y) = (p.x, p.y);
                    if swap {
                        std::mem::swap(&mut x, &mut y);
                    }
                    if flip_x {
                        x = -x;
                    }
                    if flip_y {
                        y = -y;
                    }
                    Point::new(x, y)
                });
                images.push((format!("d4(swap={swap}, flip_x={flip_x}, flip_y={flip_y})"), image));
            }
        }
    }
    images.push((
        "translate(+37, -13)".to_string(),
        net.map_points(|p| Point::new(p.x + 37, p.y - 13)),
    ));
    images
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small-but-complete config: λ = 4 tables build instantly, degree 5
    /// still exercises the local-search path through the cache and batch
    /// pairs, and every pair gets double-digit coverage.
    fn small_config() -> VerifyConfig {
        VerifyConfig {
            seed: 0xded1_cace,
            nets: 24,
            min_degree: 3,
            max_degree: 5,
            lambda: 4,
            dw_max_degree: 4,
            threads: 2,
            span: 20,
            shrink: true,
            faults: FaultPlane::default(),
            deadline_ms: None,
        }
    }

    #[test]
    fn corpus_is_deterministic_and_covers_all_degrees() {
        let config = small_config();
        let a = corpus(&config);
        let b = corpus(&config);
        assert_eq!(a, b, "same config must yield the identical corpus");
        assert_eq!(a.len(), config.nets);
        for degree in config.min_degree..=config.max_degree {
            assert!(
                a.iter().any(|n| n.degree() == degree),
                "corpus is missing degree {degree}"
            );
        }
        let other = corpus(&VerifyConfig {
            seed: config.seed + 1,
            ..config
        });
        assert_ne!(a, other, "a different seed must change the corpus");
    }

    #[test]
    fn healthy_tables_verify_clean_on_every_pair() {
        let config = small_config();
        let report = verify(&config);
        assert!(
            report.is_clean(),
            "healthy tables must verify clean, got:\n{}",
            report.summary()
        );
        assert_eq!(report.corpus_size, config.nets);
        for check in &report.checks {
            assert!(
                check.nets_checked > 0,
                "pair {} was never exercised",
                check.pair
            );
        }
    }

    #[test]
    fn mutation_smoke_catches_a_planted_corruption() {
        let config = small_config();
        let smoke = mutation_smoke(&config);
        let caught = smoke
            .caught
            .unwrap_or_else(|| panic!("harness missed the planted corruption ({})", smoke.mutation));
        assert_eq!(caught.seed, config.seed);
        // The corruption lives in the shared table, so whichever pair
        // trips first must be one that consults it.
        assert!(
            caught.pair != PathPair::BatchVsSerial,
            "a table corruption cannot manifest as a batch/serial split"
        );
        let (only_fast, only_reference) = caught.cost_symmetric_difference();
        assert!(
            !only_fast.is_empty() || !only_reference.is_empty() || !caught.detail.is_empty(),
            "counterexample must localize the disagreement"
        );
        let text = caught.to_string();
        assert!(text.contains("divergence on pair"));
        assert!(text.contains("patlabor verify --seed"));
    }

    #[test]
    fn counterexamples_shrink_when_enabled() {
        let config = small_config();
        let table = LutBuilder::new(config.lambda).build();
        // Corrupt a row a corpus net is known to score (reuse the smoke
        // victim selection), then compare shrunk vs unshrunk reports.
        let smoke = mutation_smoke_with_table(table, &config);
        let shrunk = smoke.caught.expect("smoke must catch");
        assert!(
            shrunk.net.degree() <= shrunk.original_degree,
            "shrinking must never grow the net"
        );
        assert!(
            shrunk.net.degree() >= 2,
            "a net cannot shrink below two pins"
        );
    }

    #[test]
    fn verify_with_corrupted_table_reports_nonclean() {
        let config = small_config();
        let mut table = LutBuilder::new(config.lambda).build();
        // Wipe a whole degree: every degree-4 net now fails to route,
        // which the cache pair reports as a route error mismatch only if
        // fast/slow disagree — both error identically, so the harness
        // flags it via the DW pair (router errors, oracle doesn't).
        table.remove_degree(4);
        let report = verify_with_table(table, &config);
        let cx = report.counterexample.expect("a gutted table must fail verification");
        assert_eq!(cx.pair, PathPair::LutVsNumericDw);
        assert!(cx.detail.contains("router error"));
    }

    #[test]
    fn fault_free_runs_skip_the_resilience_sweep() {
        let report = verify(&small_config());
        assert!(report.is_clean(), "{}", report.summary());
        assert!(report.resilience.is_none());
    }

    #[test]
    fn resilience_sweep_isolates_panics_and_stays_clean() {
        let config = VerifyConfig {
            faults: FaultPlane::seeded(0x5eed).with_fault(Fault {
                kind: FaultKind::StagePanic,
                scope: FaultScope::AllRungs,
                probability: 0.25,
            }),
            ..small_config()
        };
        let report = verify(&config);
        assert!(report.is_clean(), "{}", report.summary());
        let sweep = report.resilience.expect("registered faults must trigger the sweep");
        assert_eq!(sweep.nets as usize, config.nets);
        assert_eq!(sweep.served + sweep.errors, sweep.nets);
        assert!(
            sweep.panicked >= 1,
            "an all-rungs panic at p=0.25 should hit at least one of {} nets",
            config.nets
        );
        assert_eq!(sweep.errors, sweep.panicked, "panics are the only armed fault");
        assert!(report.summary().contains("fault sweep:"));
    }

    #[test]
    fn deadline_sweep_demotes_every_net_to_the_baseline() {
        let config = VerifyConfig {
            faults: FaultPlane::seeded(1).with_fault(Fault {
                kind: FaultKind::StageDelay,
                scope: FaultScope::Primary,
                probability: 1.0,
            }),
            deadline_ms: Some(1), // default injected delay is 5ms
            ..small_config()
        };
        let report = verify(&config);
        assert!(report.is_clean(), "{}", report.summary());
        let sweep = report.resilience.expect("a deadline must trigger the sweep");
        assert_eq!(sweep.errors, 0, "the baseline rung is never deadline-gated");
        assert!(sweep.deadline_hits >= sweep.nets, "every net should hit the deadline");
        assert_eq!(
            sweep.served_by[patlabor::Rung::Baseline.index()] + sweep.served_by[patlabor::Rung::ClosedForm.index()],
            sweep.nets,
            "every net should be served closed-form or by the baseline"
        );
    }

    #[test]
    fn congruent_images_are_nine_labelled_variants() {
        let net = Net::new(vec![Point::new(0, 0), Point::new(3, 1), Point::new(1, 4)])
            .expect("valid net");
        let images = congruent_images(&net);
        assert_eq!(images.len(), 9);
        // The identity image is among the eight D4 elements.
        assert!(images.iter().any(|(_, img)| *img == net));
        // All images preserve degree.
        assert!(images.iter().all(|(_, img)| img.degree() == net.degree()));
    }
}
