//! Weighted-sum scalarization — the YSD stand-in.
//!
//! YSD (Yang, Sun & Ding, ICCAD 2023) trains a neural model per degree and
//! per weighted-sum parameter to minimize `(1−β)·w + β·d`, with a
//! divide-and-conquer framework for large degrees. The training pipeline
//! and weights are unavailable, so this module substitutes the *method
//! shape* the paper actually compares against (see DESIGN.md §4):
//!
//! * small degrees — the exact scalarization optimum (an idealized YSD:
//!   the best any weighted-sum method could do), found by scanning the
//!   exact Pareto frontier;
//! * large degrees — a median-split divide-and-conquer, mirroring YSD's
//!   framework (and inheriting its wirelength weakness the paper notes for
//!   Fig. 7(c)).
//!
//! Because a weighted sum is linear in `(w, d)`, **only convex-hull points
//! of the frontier are reachable** no matter how many `β` are swept —
//! the structural limitation §I-B highlights.

use patlabor_dw::{numeric, DwConfig};
use patlabor_geom::{Net, Point};
use patlabor_pareto::{Cost, ParetoSet};
use patlabor_tree::{extract_from_union, remove_redundant_steiner, RoutingTree};

/// Largest degree solved exactly.
pub const EXACT_MAX_DEGREE: usize = 7;

/// The default `β` sweep used to produce weighted-sum "Pareto curves".
pub const DEFAULT_BETAS: [f64; 7] = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];

/// Builds the weighted-sum tree for `beta ∈ [0, 1]`
/// (`minimize (1−β)·w + β·d`).
///
/// # Panics
///
/// Panics if `beta` is outside `[0, 1]` or not finite.
pub fn weighted_sum_tree(net: &Net, beta: f64) -> RoutingTree {
    assert!(
        beta.is_finite() && (0.0..=1.0).contains(&beta),
        "beta must be in [0, 1], got {beta}"
    );
    if net.degree() <= EXACT_MAX_DEGREE {
        exact_scalarized(net, beta)
    } else {
        divide_and_conquer(net, beta)
    }
}

/// Exact scalarization optimum: the frontier point minimizing the weighted
/// sum (a linear objective attains its optimum on the Pareto frontier).
fn exact_scalarized(net: &Net, beta: f64) -> RoutingTree {
    let frontier = numeric::pareto_frontier(net, &DwConfig::default());
    let (w_weight, d_weight) = integer_weights(beta);
    frontier
        .iter()
        .min_by_key(|(c, _)| c.weighted(w_weight, d_weight))
        .map(|(_, t)| t.clone())
        .expect("frontier is never empty")
}

/// `(1−β, β)` scaled to exact integer weights.
fn integer_weights(beta: f64) -> (i64, i64) {
    let d = (beta * 10_000.0).round() as i64;
    (10_000 - d, d)
}

/// YSD-style divide and conquer: median split on alternating axes, exact
/// scalarized solutions at the leaves, subtree roots chained together.
fn divide_and_conquer(net: &Net, beta: f64) -> RoutingTree {
    let r = net.source();
    let pts: Vec<Point> = net.pins().to_vec();
    let mut edges = Vec::new();
    let top_source = solve_rec(&pts, r, beta, true, &mut edges);
    debug_assert_eq!(top_source, r, "the global source is closest to itself");
    let tree = extract_from_union(net, &edges)
        .expect("divide-and-conquer connects every pin");
    remove_redundant_steiner(&tree)
}

/// Solves the subproblem over `pts`, appends its edges, and returns its
/// local source (the point closest to the global source `r`).
fn solve_rec(
    pts: &[Point],
    r: Point,
    beta: f64,
    split_on_x: bool,
    edges: &mut Vec<(Point, Point)>,
) -> Point {
    let local_source = *pts
        .iter()
        .min_by_key(|p| (p.l1(r), p.x, p.y))
        .expect("subproblem is non-empty");
    if pts.len() == 1 {
        return local_source;
    }
    if pts.len() <= EXACT_MAX_DEGREE {
        // Local net rooted at the pin closest to the global source.
        let mut pins = vec![local_source];
        let mut used_source = false;
        for &p in pts {
            if p == local_source && !used_source {
                used_source = true;
                continue;
            }
            pins.push(p);
        }
        let local = Net::new(pins).expect("at least two pins");
        let tree = exact_scalarized(&local, beta);
        edges.extend(tree.edge_points());
        return local_source;
    }
    // Median split.
    let mut sorted = pts.to_vec();
    if split_on_x {
        sorted.sort_by_key(|p| (p.x, p.y));
    } else {
        sorted.sort_by_key(|p| (p.y, p.x));
    }
    let mid = sorted.len() / 2;
    let (p1, p2) = sorted.split_at(mid);
    let s1 = solve_rec(p1, r, beta, !split_on_x, edges);
    let s2 = solve_rec(p2, r, beta, !split_on_x, edges);
    edges.push((s1, s2));
    if s1.l1(r) <= s2.l1(r) {
        s1
    } else {
        s2
    }
}

/// Sweeps `betas` and prunes into a Pareto set.
pub fn weighted_sum_pareto(net: &Net, betas: &[f64]) -> ParetoSet<RoutingTree> {
    betas
        .iter()
        .map(|&b| {
            let t = weighted_sum_tree(net, b);
            let (w, d) = t.objectives();
            (Cost::new(w, d), t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_net(seed: &mut u64, degree: usize, span: u64) -> Net {
        let mut rng = move || {
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            *seed
        };
        Net::new(
            (0..degree)
                .map(|_| Point::new((rng() % span) as i64, (rng() % span) as i64))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn beta_extremes_match_frontier_ends() {
        let mut seed = 31u64;
        for _ in 0..10 {
            let n = random_net(&mut seed, 6, 60);
            let frontier = numeric::pareto_frontier(&n, &DwConfig::default());
            let w_tree = weighted_sum_tree(&n, 0.0);
            assert_eq!(
                w_tree.wirelength(),
                frontier.min_wirelength().unwrap().0.wirelength
            );
            let d_tree = weighted_sum_tree(&n, 1.0);
            assert_eq!(d_tree.delay(), frontier.min_delay().unwrap().0.delay);
        }
    }

    #[test]
    fn weighted_sum_misses_concave_frontier_points() {
        // A frontier {(10,30), (14,18), (20,16)} has (14,18) strictly
        // inside the segment (10,30)–(20,16)? Check: at (14,18): hull from
        // (10,30) to (20,16): interpolation at w=14: 30 - 4*(14/10) = 24.4
        // > 18 → (14,18) is BELOW the chord, i.e. convex → reachable.
        // Instead verify the structural property on synthetic costs: every
        // β-optimum lies on the lower convex hull of the frontier.
        let frontier = [
            Cost::new(10, 30),
            Cost::new(13, 27), // concave bump: above the (10,30)-(20,16) chord
            Cost::new(20, 16),
        ];
        for beta in [0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let (ww, dw) = integer_weights(beta);
            let best = frontier.iter().min_by_key(|c| c.weighted(ww, dw)).unwrap();
            assert_ne!(
                *best,
                Cost::new(13, 27),
                "a weighted sum must never select the concave point (β={beta})"
            );
        }
    }

    #[test]
    fn divide_and_conquer_produces_valid_trees() {
        let mut seed = 47u64;
        for _ in 0..5 {
            let n = random_net(&mut seed, 25, 200);
            for beta in [0.0, 0.5, 1.0] {
                let t = weighted_sum_tree(&n, beta);
                t.validate(&n).unwrap();
                assert!(t.delay() >= n.delay_lower_bound());
            }
        }
    }

    #[test]
    fn sweep_is_a_frontier() {
        let mut seed = 53u64;
        let n = random_net(&mut seed, 30, 200);
        let set = weighted_sum_pareto(&n, &DEFAULT_BETAS);
        assert!(!set.is_empty());
        let costs = set.cost_vec();
        for w in costs.windows(2) {
            assert!(w[0].wirelength < w[1].wirelength && w[0].delay > w[1].delay);
        }
    }

    #[test]
    #[should_panic(expected = "beta must be")]
    fn rejects_bad_beta() {
        let n = Net::new(vec![Point::new(0, 0), Point::new(1, 1)]).unwrap();
        let _ = weighted_sum_tree(&n, -0.1);
    }
}
