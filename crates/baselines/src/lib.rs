//! Comparator algorithms for timing-driven routing.
//!
//! Everything the paper evaluates PatLabor against, implemented from
//! scratch on the same substrates:
//!
//! * [`rsmt`] — rectilinear Steiner *minimum* trees: Prim MST, iterated
//!   1-Steiner (Kahng–Robins) and an exact small-degree path. Stands in
//!   for FLUTE (wirelength normalization + local-search initialization).
//! * [`rsma`] — rectilinear Steiner *arborescences*: a Córdova–Lee-style
//!   per-quadrant merge heuristic. All paths are shortest, so it pins the
//!   delay normalization `d(CL)` of Fig. 7.
//! * [`pd`] — Prim–Dijkstra (Alpert et al.): the classic `α`-blend of Prim
//!   and Dijkstra keys, plus the PD-II style refinement pass.
//! * [`salt`] — SALT (Chen & Young): shallow-light construction with an
//!   `ε` bound on per-sink path stretch, plus post-processing.
//! * [`weighted_sum`] — the YSD stand-in: scalarized `(1−β)w + βd`
//!   optimization (exact on small degrees, divide-and-conquer on large
//!   ones). Like the real YSD it can only discover *convex* frontier
//!   points — exactly the weakness the paper exploits (§I-B). See
//!   DESIGN.md §4 for the substitution rationale.
//!
//! Each method exposes a single-tree constructor and a `*_pareto` sweep
//! that runs a parameter list and prunes the results into a Pareto set —
//! the way the paper produces "Pareto curves" for parameterized baselines.
//!
//! [`fallback`] composes RSMT + arborescence + PD-II into the router's
//! always-available last-resort frontier (the degradation ladder's bottom
//! rung, DESIGN.md §12).

pub mod fallback;
pub mod pd;
pub mod rsma;
pub mod rsmt;
pub mod salt;
pub mod weighted_sum;

pub use fallback::fallback_frontier;
