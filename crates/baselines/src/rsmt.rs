//! Rectilinear Steiner minimum trees — the FLUTE substitute.
//!
//! Three levels of effort:
//!
//! * [`prim_mst`] — the rectilinear MST (no Steiner points), the classic
//!   3/2-approximation and the seed for everything else;
//! * [`iterated_one_steiner`] — Kahng–Robins iterated 1-Steiner: greedily
//!   insert the Hanan candidate with the best MST gain until dry;
//! * [`rsmt_tree`] — dispatcher: exact (numeric Pareto-DW, wirelength end)
//!   for small degrees, iterated 1-Steiner above.

use patlabor_dw::{numeric, DwConfig};
use patlabor_geom::{Net, Point};
use patlabor_tree::{remove_redundant_steiner, RoutingTree};

/// Largest degree routed exactly by [`rsmt_tree`].
pub const EXACT_RSMT_MAX_DEGREE: usize = 7;

/// Rectilinear minimum spanning tree over the pins, rooted at the source.
///
/// Runs Prim in `O(n²)`.
pub fn prim_mst(net: &Net) -> RoutingTree {
    let pts = net.pins();
    let n = pts.len();
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![i64::MAX; n];
    let mut best_parent = vec![0usize; n];
    in_tree[0] = true;
    for v in 1..n {
        best_dist[v] = pts[v].l1(pts[0]);
    }
    let mut parent = vec![0usize; n];
    for _ in 1..n {
        let v = (0..n)
            .filter(|&v| !in_tree[v])
            .min_by_key(|&v| (best_dist[v], v))
            .expect("some node is outside the tree");
        in_tree[v] = true;
        parent[v] = best_parent[v];
        for u in 1..n {
            if !in_tree[u] {
                let d = pts[u].l1(pts[v]);
                if d < best_dist[u] {
                    best_dist[u] = d;
                    best_parent[u] = v;
                }
            }
        }
    }
    RoutingTree::from_parents(pts.to_vec(), parent, n).expect("Prim produces a tree")
}

/// MST wirelength over an explicit point set (first point is the root).
fn mst_cost(pts: &[Point]) -> i64 {
    let n = pts.len();
    let mut in_tree = vec![false; n];
    let mut best = vec![i64::MAX; n];
    in_tree[0] = true;
    for v in 1..n {
        best[v] = pts[v].l1(pts[0]);
    }
    let mut total = 0;
    for _ in 1..n {
        let v = (1..n)
            .filter(|&v| !in_tree[v])
            .min_by_key(|&v| best[v])
            .expect("some node is outside the tree");
        in_tree[v] = true;
        total += best[v];
        for u in 1..n {
            if !in_tree[u] {
                best[u] = best[u].min(pts[u].l1(pts[v]));
            }
        }
    }
    total
}

/// Kahng–Robins iterated 1-Steiner.
///
/// Candidate Steiner points are the Hanan crossings of tree-adjacent node
/// pairs (a practical restriction that keeps each round linear in tree
/// size); the candidate with the largest MST gain is inserted and the
/// process repeats until no candidate gains.
pub fn iterated_one_steiner(net: &Net) -> RoutingTree {
    let mut pts: Vec<Point> = net.pins().to_vec();
    let num_pins = net.degree();
    loop {
        let base = mst_cost(&pts);
        // Candidates from current MST adjacencies.
        let tree = mst_over(&pts, num_pins);
        let mut candidates: Vec<Point> = Vec::new();
        for (v, p) in tree.edges() {
            let a = tree.point(v);
            let b = tree.point(p);
            for c in [Point::new(a.x, b.y), Point::new(b.x, a.y)] {
                if !pts.contains(&c) {
                    candidates.push(c);
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let mut best: Option<(i64, Point)> = None;
        for c in candidates {
            let mut trial = pts.clone();
            trial.push(c);
            let cost = mst_cost(&trial);
            if cost < base && best.is_none_or(|(bc, _)| cost < bc) {
                best = Some((cost, c));
            }
        }
        match best {
            Some((_, c)) => pts.push(c),
            None => break,
        }
    }
    remove_redundant_steiner(&mst_over(&pts, num_pins))
}

/// Prim MST over pins + chosen Steiner points, as a [`RoutingTree`].
fn mst_over(pts: &[Point], num_pins: usize) -> RoutingTree {
    let n = pts.len();
    let mut in_tree = vec![false; n];
    let mut best = vec![i64::MAX; n];
    let mut best_parent = vec![0usize; n];
    in_tree[0] = true;
    for v in 1..n {
        best[v] = pts[v].l1(pts[0]);
    }
    let mut parent = vec![0usize; n];
    for _ in 1..n {
        let v = (1..n)
            .filter(|&v| !in_tree[v])
            .min_by_key(|&v| (best[v], v))
            .expect("some node is outside the tree");
        in_tree[v] = true;
        parent[v] = best_parent[v];
        for u in 1..n {
            if !in_tree[u] {
                let d = pts[u].l1(pts[v]);
                if d < best[u] {
                    best[u] = d;
                    best_parent[u] = v;
                }
            }
        }
    }
    RoutingTree::from_parents(pts.to_vec(), parent, num_pins).expect("Prim produces a tree")
}

/// The FLUTE-substitute: a near-minimal Steiner tree via iterated
/// 1-Steiner, **delay-agnostic** like the real FLUTE.
///
/// Deliberately *not* routed through the exact Pareto-DW: FLUTE returns
/// one wirelength-driven topology with arbitrary delay, and reproducing
/// that behaviour matters — the paper's Table III hinges on baselines
/// seeded from such trees missing the Pareto frontier. Use [`exact_rsmt`]
/// when the true minimum (with the best delay among RSMTs) is wanted.
pub fn rsmt_tree(net: &Net) -> RoutingTree {
    iterated_one_steiner(net)
}

/// The exact RSMT — the wirelength end of the exact Pareto frontier
/// (which, among all minimum-wirelength trees, is the one with the least
/// delay).
///
/// # Panics
///
/// Panics if the degree exceeds [`EXACT_RSMT_MAX_DEGREE`].
pub fn exact_rsmt(net: &Net) -> RoutingTree {
    assert!(
        net.degree() <= EXACT_RSMT_MAX_DEGREE,
        "exact RSMT supports degree <= {EXACT_RSMT_MAX_DEGREE}"
    );
    let frontier = numeric::pareto_frontier(net, &DwConfig::default());
    let (_, tree) = frontier.min_wirelength().expect("frontier is never empty");
    tree.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(pts: &[(i64, i64)]) -> Net {
        Net::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn mst_of_three_collinear_pins() {
        let t = prim_mst(&net(&[(0, 0), (5, 0), (9, 0)]));
        assert_eq!(t.wirelength(), 9);
    }

    #[test]
    fn one_steiner_beats_mst_on_a_cross() {
        let n = net(&[(0, 0), (4, 2), (2, 4)]);
        let mst = prim_mst(&n);
        let ios = iterated_one_steiner(&n);
        assert!(ios.wirelength() < mst.wirelength());
        assert_eq!(ios.wirelength(), 8); // exact RSMT for this instance
        ios.validate(&n).unwrap();
    }

    #[test]
    fn exact_rsmt_matches_dw() {
        let n = net(&[(1, 8), (0, 0), (8, 2), (9, 9), (4, 5)]);
        let t = exact_rsmt(&n);
        let f = numeric::pareto_frontier(&n, &DwConfig::default());
        assert_eq!(t.wirelength(), f.min_wirelength().unwrap().0.wirelength);
        // The FLUTE-substitute heuristic may only ever be >= the exact one.
        assert!(rsmt_tree(&n).wirelength() >= t.wirelength());
    }

    #[test]
    fn heuristic_is_close_to_exact_on_random_small_nets() {
        let mut seed = 42u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut total_exact = 0i64;
        let mut total_heur = 0i64;
        for _ in 0..30 {
            let pins: Vec<Point> = (0..6)
                .map(|_| Point::new((rng() % 40) as i64, (rng() % 40) as i64))
                .collect();
            let n = Net::new(pins).unwrap();
            let exact = numeric::pareto_frontier(&n, &DwConfig::default())
                .min_wirelength()
                .unwrap()
                .0
                .wirelength;
            let heur = iterated_one_steiner(&n).wirelength();
            assert!(heur >= exact);
            total_exact += exact;
            total_heur += heur;
        }
        // Iterated 1-Steiner is typically within a couple of percent.
        assert!(
            (total_heur as f64) <= total_exact as f64 * 1.05,
            "1-Steiner too weak: {total_heur} vs exact {total_exact}"
        );
    }

    #[test]
    fn large_degree_path_is_valid() {
        let mut seed = 7u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let pins: Vec<Point> = (0..20)
            .map(|_| Point::new((rng() % 100) as i64, (rng() % 100) as i64))
            .collect();
        let n = Net::new(pins).unwrap();
        let t = rsmt_tree(&n);
        t.validate(&n).unwrap();
        assert!(t.wirelength() <= prim_mst(&n).wirelength());
    }
}
