//! The degradation ladder's last rung: a fast, always-available frontier.
//!
//! When every exact rung of the router's ladder fails (missing table
//! degree, corrupted rows, expired deadline, panicking stage — see
//! DESIGN.md §12), the net is served by this sweep: the wirelength end is
//! an RSMT, the delay end a shortest-path arborescence, and a few
//! Prim–Dijkstra blends fill the middle. Every constructor here is a
//! near-linear heuristic, so the rung completes even for nets whose exact
//! enumeration would blow the budget — approximate by construction, but
//! every returned tree is a valid routing of the net with consistent
//! objectives.

use patlabor_geom::Net;
use patlabor_pareto::{Cost, ParetoSet};
use patlabor_tree::RoutingTree;

use crate::pd::pd2_tree;
use crate::rsma::cl_arborescence;
use crate::rsmt::rsmt_tree;

/// The PD blend factors the fallback sweeps (between the RSMT at the
/// wirelength end and the arborescence at the delay end).
pub const FALLBACK_ALPHAS: [f64; 3] = [0.25, 0.5, 0.75];

/// Routes `net` with every fallback constructor and prunes the results
/// into a Pareto set. Never empty, never panics on a valid [`Net`], and
/// deterministic — the same net always yields the same frontier.
pub fn fallback_frontier(net: &Net) -> ParetoSet<RoutingTree> {
    let mut entries: Vec<(Cost, RoutingTree)> = Vec::with_capacity(2 + FALLBACK_ALPHAS.len());
    let mut push = |tree: RoutingTree| {
        let (w, d) = tree.objectives();
        entries.push((Cost::new(w, d), tree));
    };
    push(rsmt_tree(net));
    push(cl_arborescence(net));
    for alpha in FALLBACK_ALPHAS {
        push(pd2_tree(net, alpha));
    }
    ParetoSet::from_unpruned(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use patlabor_geom::Point;

    fn net(pts: &[(i64, i64)]) -> Net {
        Net::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn fallback_is_valid_consistent_and_nonempty() {
        let nets = [
            net(&[(0, 0), (7, 3)]),
            net(&[(0, 0), (4, 2), (2, 4)]),
            net(&[(19, 2), (8, 4), (4, 3), (5, 4), (13, 12)]),
            net(&[(3, 3), (0, 7), (7, 0), (9, 9), (1, 1), (8, 2), (2, 8), (5, 5)]),
        ];
        for n in &nets {
            let frontier = fallback_frontier(n);
            assert!(!frontier.is_empty());
            for (c, t) in frontier.iter() {
                t.validate(n).unwrap();
                assert_eq!((c.wirelength, c.delay), t.objectives());
            }
        }
    }

    #[test]
    fn fallback_points_are_mutually_non_dominated() {
        let n = net(&[(0, 0), (12, 1), (3, 9), (10, 10), (1, 6), (7, 4)]);
        let costs = fallback_frontier(&n).cost_vec();
        for (i, a) in costs.iter().enumerate() {
            for (j, b) in costs.iter().enumerate() {
                if i == j {
                    continue;
                }
                assert!(
                    !(a.wirelength <= b.wirelength && a.delay <= b.delay),
                    "{a:?} dominates {b:?}"
                );
            }
        }
    }

    #[test]
    fn fallback_is_deterministic() {
        let n = net(&[(5, 5), (0, 9), (9, 0), (14, 7), (2, 13)]);
        assert_eq!(fallback_frontier(&n), fallback_frontier(&n));
    }

    #[test]
    fn fallback_ends_hit_the_standard_bounds() {
        let n = net(&[(0, 0), (9, 1), (2, 8), (11, 10)]);
        let frontier = fallback_frontier(&n);
        // The delay end is an arborescence: every path shortest.
        let (d_end, _) = frontier.min_delay().unwrap();
        assert_eq!(d_end.delay, n.delay_lower_bound());
        // The wirelength end is no worse than the plain RSMT.
        let (w_end, _) = frontier.min_wirelength().unwrap();
        assert!(w_end.wirelength <= rsmt_tree(&n).objectives().0);
    }
}
