//! SALT — Steiner shallow-light trees (Chen & Young, TCAD 2020).
//!
//! SALT starts from a light tree (an RSMT) and enforces a *shallowness*
//! bound: every pin's root path may stretch at most `(1 + ε)` beyond its
//! `l₁` distance. A DFS accumulates path lengths; when a pin breaks the
//! bound it becomes a **breakpoint** and is reconnected through a direct
//! shortest connection, resetting the accumulated stretch for its subtree
//! (the Khuller–Raghavachari–Young construction the SALT paper builds on).
//! Post-processing then recovers wirelength with the safe refinement
//! passes.
//!
//! `ε → 0` approaches a shortest-path tree, `ε → ∞` keeps the RSMT, so a
//! sweep over `ε` traces the method's achievable tradeoff curve.

use patlabor_geom::Net;
use patlabor_pareto::{Cost, ParetoSet};
use patlabor_tree::{
    reconnect_pass, remove_redundant_steiner, RefineObjective, RoutingTree,
};

use crate::rsmt::rsmt_tree;

/// The default `ε` sweep used to produce SALT "Pareto curves".
pub const DEFAULT_EPSILONS: [f64; 8] = [0.0, 0.05, 0.1, 0.2, 0.4, 0.8, 1.5, 3.0];

/// Builds one SALT tree with shallowness bound `epsilon ≥ 0`.
///
/// The breakpointed tree satisfies the per-pin bound
/// `pl(pin) ≤ (1 + ε) · ‖r − pin‖₁`; the post-processing passes preserve
/// the implied *global* bound `d(T) ≤ (1 + ε) · maxᵢ ‖r − pᵢ‖₁` (checked
/// in debug builds) while recovering wirelength.
///
/// # Panics
///
/// Panics if `epsilon` is negative or not finite.
pub fn salt_tree(net: &Net, epsilon: f64) -> RoutingTree {
    let light = rsmt_tree(net);
    salt_from_light(net, &light, epsilon)
}

/// SALT starting from a caller-provided light tree (useful when the RSMT
/// is already available).
pub fn salt_from_light(net: &Net, light: &RoutingTree, epsilon: f64) -> RoutingTree {
    assert!(
        epsilon.is_finite() && epsilon >= 0.0,
        "epsilon must be >= 0, got {epsilon}"
    );
    let mut parent: Vec<usize> = (0..light.num_nodes()).map(|v| light.parent(v)).collect();
    let pts = light.points().to_vec();
    let r = net.source();

    // DFS with running path lengths; reconnect violating pins to the root.
    let children = light.children();
    let mut stack = vec![(0usize, 0i64)];
    let mut order_guard = 0usize;
    while let Some((u, pl)) = stack.pop() {
        order_guard += 1;
        assert!(order_guard <= 2 * pts.len(), "DFS must terminate");
        for &c in &children[u] {
            let step = pts[c].l1(pts[u]);
            let mut cpl = pl + step;
            let direct = r.l1(pts[c]);
            let is_pin = c < light.num_pins();
            if is_pin && cpl as f64 > (1.0 + epsilon) * direct as f64 {
                // Breakpoint: route this pin directly from the source.
                parent[c] = 0;
                cpl = direct;
            }
            stack.push((c, cpl));
        }
    }

    let tree = RoutingTree::from_parents(pts, parent, light.num_pins())
        .expect("reparenting to the root cannot create cycles");
    let tree = remove_redundant_steiner(&tree);
    // SALT post-processing: recover wirelength, then tighten delay, while
    // never violating the shallowness bound (both passes are safe).
    let tree = reconnect_pass(&tree, RefineObjective::Wirelength);
    let tree = reconnect_pass(&tree, RefineObjective::Delay);
    debug_assert!(shallowness_ok(net, &tree, epsilon));
    tree
}

fn shallowness_ok(net: &Net, tree: &RoutingTree, epsilon: f64) -> bool {
    tree.delay() as f64 <= (1.0 + epsilon) * net.delay_lower_bound() as f64 + 1e-9
}

/// Sweeps `epsilons` and prunes into a Pareto set.
pub fn salt_pareto(net: &Net, epsilons: &[f64]) -> ParetoSet<RoutingTree> {
    let light = rsmt_tree(net);
    epsilons
        .iter()
        .map(|&e| {
            let t = salt_from_light(net, &light, e);
            let (w, d) = t.objectives();
            (Cost::new(w, d), t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use patlabor_geom::Point;

    fn random_net(seed: &mut u64, degree: usize, span: u64) -> Net {
        let mut rng = move || {
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            *seed
        };
        Net::new(
            (0..degree)
                .map(|_| Point::new((rng() % span) as i64, (rng() % span) as i64))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn epsilon_zero_gives_shortest_paths() {
        let mut seed = 3u64;
        for _ in 0..10 {
            let n = random_net(&mut seed, 9, 60);
            let t = salt_tree(&n, 0.0);
            t.validate(&n).unwrap();
            assert_eq!(t.delay(), n.delay_lower_bound());
        }
    }

    #[test]
    fn huge_epsilon_keeps_the_light_tree() {
        let mut seed = 11u64;
        for _ in 0..10 {
            let n = random_net(&mut seed, 9, 60);
            let light = rsmt_tree(&n);
            let t = salt_tree(&n, 1e6);
            assert!(t.wirelength() <= light.wirelength());
        }
    }

    #[test]
    fn shallowness_bound_holds_across_sweep() {
        let mut seed = 17u64;
        for _ in 0..5 {
            let n = random_net(&mut seed, 12, 80);
            for &eps in &DEFAULT_EPSILONS {
                let t = salt_tree(&n, eps);
                assert!(
                    shallowness_ok(&n, &t, eps),
                    "bound violated at eps={eps} on {:?}",
                    n.pins()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be")]
    fn rejects_negative_epsilon() {
        let n = Net::new(vec![Point::new(0, 0), Point::new(1, 1)]).unwrap();
        let _ = salt_tree(&n, -0.5);
    }

    #[test]
    fn sweep_produces_a_tradeoff() {
        let mut seed = 29u64;
        let mut tradeoffs = 0;
        for _ in 0..10 {
            let n = random_net(&mut seed, 14, 120);
            let set = salt_pareto(&n, &DEFAULT_EPSILONS);
            assert!(!set.is_empty());
            if set.len() >= 2 {
                tradeoffs += 1;
            }
        }
        assert!(tradeoffs >= 3, "SALT sweep should often find tradeoffs");
    }
}
