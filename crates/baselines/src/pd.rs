//! Prim–Dijkstra and PD-II (Alpert et al., ISPD 2018).
//!
//! Prim grows an MST (key = edge length); Dijkstra grows a shortest-path
//! tree (key = root path length). Prim–Dijkstra interpolates:
//! attach the off-tree pin `v` minimizing `α · pl(u) + ‖u − v‖₁` over tree
//! nodes `u`, with `α ∈ [0, 1]` trading wirelength (α = 0 ⇒ Prim) against
//! delay (α = 1 ⇒ Dijkstra). PD-II adds a post-pass of detour-aware edge
//! rewrites; we reuse the safe reconnection passes from
//! [`patlabor_tree::reconnect_pass_with`], which implement the same move
//! set.

use patlabor_geom::Net;
use patlabor_pareto::{Cost, ParetoSet};
use patlabor_tree::{reconnect_pass_with, ReconnectMoves, RefineObjective, RoutingTree};

/// The default `α` sweep used to produce PD "Pareto curves".
pub const DEFAULT_ALPHAS: [f64; 7] = [0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0];

/// Builds one Prim–Dijkstra tree for a blend factor `alpha ∈ [0, 1]`.
///
/// # Panics
///
/// Panics if `alpha` is outside `[0, 1]` or not finite.
pub fn pd_tree(net: &Net, alpha: f64) -> RoutingTree {
    assert!(
        alpha.is_finite() && (0.0..=1.0).contains(&alpha),
        "alpha must be in [0, 1], got {alpha}"
    );
    let pts = net.pins();
    let n = pts.len();
    let mut in_tree = vec![false; n];
    let mut path_len = vec![0i64; n];
    let mut parent = vec![0usize; n];
    in_tree[0] = true;
    for _ in 1..n {
        // Attach the pin with the smallest blended key.
        let mut best: Option<(f64, usize, usize)> = None; // (key, v, u)
        for v in 1..n {
            if in_tree[v] {
                continue;
            }
            for u in 0..n {
                if !in_tree[u] {
                    continue;
                }
                let key = alpha * path_len[u] as f64 + pts[v].l1(pts[u]) as f64;
                let better = match best {
                    None => true,
                    Some((bk, bv, _)) => key < bk || (key == bk && (v, u) < (bv, usize::MAX)),
                };
                if better {
                    best = Some((key, v, u));
                }
            }
        }
        let (_, v, u) = best.expect("some pin is outside the tree");
        in_tree[v] = true;
        parent[v] = u;
        path_len[v] = path_len[u] + pts[v].l1(pts[u]);
    }
    RoutingTree::from_parents(pts.to_vec(), parent, n).expect("PD produces a tree")
}

/// PD-II: Prim–Dijkstra plus the detour-aware refinement pass.
///
/// PD-II's published move set swaps a node's tree edge for a connection to
/// another *node* (no Steiner insertion — that is SALT/PatLabor
/// territory), so the refinement runs with
/// [`ReconnectMoves::NodesOnly`].
pub fn pd2_tree(net: &Net, alpha: f64) -> RoutingTree {
    let tree = pd_tree(net, alpha);
    let tree = reconnect_pass_with(&tree, RefineObjective::Delay, ReconnectMoves::NodesOnly);
    reconnect_pass_with(&tree, RefineObjective::Wirelength, ReconnectMoves::NodesOnly)
}

/// Sweeps `alphas` (PD-II variant) and prunes into a Pareto set — the way
/// parameterized baselines produce candidate frontiers in the paper's
/// experiments.
pub fn pd_pareto(net: &Net, alphas: &[f64]) -> ParetoSet<RoutingTree> {
    alphas
        .iter()
        .map(|&a| {
            let t = pd2_tree(net, a);
            let (w, d) = t.objectives();
            (Cost::new(w, d), t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use patlabor_geom::Point;

    fn net(pts: &[(i64, i64)]) -> Net {
        Net::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    fn random_net(seed: &mut u64, degree: usize, span: u64) -> Net {
        let mut rng = move || {
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            *seed
        };
        Net::new(
            (0..degree)
                .map(|_| Point::new((rng() % span) as i64, (rng() % span) as i64))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn alpha_zero_is_prim() {
        let n = net(&[(0, 0), (10, 0), (11, 1), (12, 0)]);
        let pd = pd_tree(&n, 0.0);
        let mst = crate::rsmt::prim_mst(&n);
        assert_eq!(pd.wirelength(), mst.wirelength());
    }

    #[test]
    fn alpha_one_is_shortest_paths() {
        let mut seed = 5u64;
        for _ in 0..10 {
            let n = random_net(&mut seed, 8, 50);
            let t = pd_tree(&n, 1.0);
            // Dijkstra on the complete graph = star distances: every pin's
            // path equals its L1 distance.
            assert_eq!(t.delay(), n.delay_lower_bound());
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn rejects_bad_alpha() {
        let _ = pd_tree(&net(&[(0, 0), (1, 1)]), 1.5);
    }

    #[test]
    fn alpha_trades_wirelength_for_delay() {
        let mut seed = 77u64;
        let mut w_prim_total = 0i64;
        let mut w_dij_total = 0i64;
        let mut d_prim_total = 0i64;
        let mut d_dij_total = 0i64;
        for _ in 0..10 {
            let n = random_net(&mut seed, 12, 100);
            let prim = pd_tree(&n, 0.0);
            let dij = pd_tree(&n, 1.0);
            w_prim_total += prim.wirelength();
            w_dij_total += dij.wirelength();
            d_prim_total += prim.delay();
            d_dij_total += dij.delay();
        }
        assert!(w_prim_total <= w_dij_total);
        assert!(d_dij_total <= d_prim_total);
    }

    #[test]
    fn pd2_refinement_never_hurts() {
        let mut seed = 13u64;
        for _ in 0..10 {
            let n = random_net(&mut seed, 10, 80);
            let base = pd_tree(&n, 0.3);
            let refined = pd2_tree(&n, 0.3);
            refined.validate(&n).unwrap();
            // The two passes optimize d then w; the final tree must not be
            // dominated by the base tree.
            let (wb, db) = base.objectives();
            let (wr, dr) = refined.objectives();
            assert!(wr <= wb || dr <= db);
            assert!(dr <= db);
        }
    }

    #[test]
    fn pareto_sweep_is_a_frontier() {
        let mut seed = 21u64;
        let n = random_net(&mut seed, 15, 100);
        let set = pd_pareto(&n, &DEFAULT_ALPHAS);
        assert!(!set.is_empty());
        let costs = set.cost_vec();
        for w in costs.windows(2) {
            assert!(w[0].wirelength < w[1].wirelength);
            assert!(w[0].delay > w[1].delay);
        }
    }
}
