//! Rectilinear Steiner minimum arborescences — the Córdova–Lee substitute.
//!
//! An arborescence routes every sink along a *shortest* rectilinear path
//! from the source, so its delay equals the trivial lower bound
//! `maxᵢ ‖r − pᵢ‖₁`; the interesting objective is its wirelength. The
//! classic practical construction (Córdova & Lee, 1994; Rao et al., 1992)
//! greedily merges the pair of nodes whose *meet* (component-wise move
//! toward the source) is farthest from the source — each merge shares the
//! maximum amount of wire while preserving path monotonicity.
//!
//! Sinks are partitioned into the four quadrants around the source and
//! each quadrant is solved independently (monotone paths cannot cross
//! quadrants).

use patlabor_geom::{Net, Point};
use patlabor_tree::{remove_redundant_steiner, RoutingTree};

/// Builds a shortest-path (arborescence) routing tree with the
/// Córdova–Lee-style merge heuristic.
///
/// Every source→sink path has exactly length `‖r − pᵢ‖₁` (asserted in
/// debug builds); wirelength is within 2× of the optimal arborescence per
/// the CL analysis.
pub fn cl_arborescence(net: &Net) -> RoutingTree {
    let r = net.source();
    // Partition sinks into quadrants (relative, boundary goes to the first
    // matching quadrant).
    let mut quadrants: [Vec<Point>; 4] = Default::default();
    for s in net.sinks() {
        let dx = s.x - r.x;
        let dy = s.y - r.y;
        let q = match (dx >= 0, dy >= 0) {
            (true, true) => 0,
            (false, true) => 1,
            (false, false) => 2,
            (true, false) => 3,
        };
        quadrants[q].push(s);
    }

    let mut edges: Vec<(Point, Point)> = Vec::new();
    for (q, sinks) in quadrants.iter().enumerate() {
        if sinks.is_empty() {
            continue;
        }
        // Normalize into the first quadrant around the origin.
        let norm = |p: Point| -> Point {
            let dx = p.x - r.x;
            let dy = p.y - r.y;
            match q {
                0 => Point::new(dx, dy),
                1 => Point::new(-dx, dy),
                2 => Point::new(-dx, -dy),
                _ => Point::new(dx, -dy),
            }
        };
        let denorm = |p: Point| -> Point {
            match q {
                0 => Point::new(r.x + p.x, r.y + p.y),
                1 => Point::new(r.x - p.x, r.y + p.y),
                2 => Point::new(r.x - p.x, r.y - p.y),
                _ => Point::new(r.x + p.x, r.y - p.y),
            }
        };
        let local: Vec<Point> = sinks.iter().map(|&s| norm(s)).collect();
        for (a, b) in first_quadrant_rsa(&local) {
            edges.push((denorm(a), denorm(b)));
        }
    }

    let tree = patlabor_tree::extract_from_union(net, &edges)
        .expect("per-quadrant arborescences connect every sink to the source");
    let tree = remove_redundant_steiner(&tree);
    debug_assert_eq!(tree.delay(), net.delay_lower_bound());
    tree
}

/// RSA over first-quadrant points (source at the origin). Returns edges.
fn first_quadrant_rsa(sinks: &[Point]) -> Vec<(Point, Point)> {
    let mut active: Vec<Point> = sinks.to_vec();
    active.sort_unstable();
    active.dedup();
    let mut edges = Vec::new();
    while active.len() > 1 {
        // Merge the pair whose meet is farthest from the origin.
        let (mut bi, mut bj, mut best) = (0usize, 1usize, -1i64);
        for i in 0..active.len() {
            for j in i + 1..active.len() {
                let meet = active[i].min(active[j]);
                let score = meet.x + meet.y;
                if score > best {
                    best = score;
                    bi = i;
                    bj = j;
                }
            }
        }
        let (a, b) = (active[bi], active[bj]);
        let meet = a.min(b);
        if meet != a {
            edges.push((meet, a));
        }
        if meet != b {
            edges.push((meet, b));
        }
        active.remove(bj);
        active.remove(bi);
        active.push(meet);
        // Keep the list duplicate-free: a meet may coincide with another
        // active node.
        active.sort_unstable();
        active.dedup();
    }
    let last = active[0];
    let origin = Point::new(0, 0);
    if last != origin {
        edges.push((origin, last));
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(pts: &[(i64, i64)]) -> Net {
        Net::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn single_sink_is_direct() {
        let n = net(&[(0, 0), (5, 7)]);
        let t = cl_arborescence(&n);
        assert_eq!(t.wirelength(), 12);
        assert_eq!(t.delay(), 12);
    }

    #[test]
    fn first_quadrant_sharing() {
        // Sinks (4,2) and (2,4) meet at (2,2): shared trunk of length 4.
        let n = net(&[(0, 0), (4, 2), (2, 4)]);
        let t = cl_arborescence(&n);
        assert_eq!(t.delay(), 6);
        assert_eq!(t.wirelength(), 4 + 2 + 2);
    }

    #[test]
    fn all_four_quadrants() {
        let n = net(&[(0, 0), (3, 3), (-3, 3), (-3, -3), (3, -3)]);
        let t = cl_arborescence(&n);
        t.validate(&n).unwrap();
        assert_eq!(t.delay(), 6);
        assert_eq!(t.wirelength(), 4 * 6); // no sharing across quadrants
    }

    #[test]
    fn paths_are_always_shortest_on_random_nets() {
        let mut seed = 99u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..40 {
            let degree = 3 + (trial % 10) as usize;
            let pins: Vec<Point> = (0..degree)
                .map(|_| {
                    Point::new((rng() % 60) as i64 - 30, (rng() % 60) as i64 - 30)
                })
                .collect();
            let n = Net::new(pins).unwrap();
            let t = cl_arborescence(&n);
            t.validate(&n).unwrap();
            assert_eq!(t.delay(), n.delay_lower_bound());
            for pin in 1..n.degree() {
                assert_eq!(
                    t.pin_path_length(pin),
                    n.source().l1(n.pins()[pin]),
                    "non-monotone path on {:?}",
                    n.pins()
                );
            }
            // Arborescence shares wire: never worse than the star.
            let star: i64 = n.sinks().map(|s| n.source().l1(s)).sum();
            assert!(t.wirelength() <= star);
        }
    }

    #[test]
    fn duplicate_sinks_are_fine() {
        let n = net(&[(0, 0), (4, 4), (4, 4), (2, 2)]);
        let t = cl_arborescence(&n);
        t.validate(&n).unwrap();
        assert_eq!(t.delay(), 8);
        assert_eq!(t.wirelength(), 8);
    }
}
