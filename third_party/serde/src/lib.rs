//! Offline placeholder for `serde`.
//!
//! The workspace declares optional `serde` dependencies behind per-crate
//! `serde` cargo features (all disabled by default, and none enabled by any
//! workspace build). The build container cannot reach crates.io, so this
//! stub exists purely to satisfy dependency resolution. If a future PR
//! wants real serialization support it must vendor the actual `serde` (and
//! `serde_derive`) sources — enabling a dependent's `serde` feature against
//! this stub will fail to compile, loudly, at the first derive.
