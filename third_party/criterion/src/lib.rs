//! Offline drop-in replacement for the subset of `criterion` this
//! workspace's benches use.
//!
//! The build container has no crates.io access, so the real criterion is
//! unavailable. This shim keeps `cargo bench` working with honest (if
//! unsophisticated) measurements: each benchmark runs a short warmup, then
//! `sample_size` timed samples, and reports min/mean/max wall-clock time
//! per iteration plus throughput when configured. There is no outlier
//! analysis, plotting, or saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Short warmup so first-touch effects do not pollute the samples.
        for _ in 0..2 {
            std::hint::black_box(f());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().expect("non-empty");
    let max = *samples.iter().max().expect("non-empty");
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{name:<40} [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]{rate}");
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, id.label),
            &bencher.samples,
            self.throughput,
        );
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a report separator here; upstream finalizes state).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Benchmark driver (`criterion::Criterion` subset).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name}");
        BenchmarkGroup {
            name,
            sample_size: 20,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 20,
        };
        f(&mut bencher);
        report(name, &bencher.samples, None);
        self
    }
}

/// Declares a group function running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_expected_sample_count() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(5);
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::from_parameter("count"), |b| {
            b.iter(|| runs += 1)
        });
        group.finish();
        // 2 warmup + 5 samples.
        assert_eq!(runs, 7);
    }

    #[test]
    fn ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
