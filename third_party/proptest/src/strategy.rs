//! Value-generation strategies (`proptest::strategy` subset, no shrinking).

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is simply a seeded generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f` (upstream `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn range_tuple_map_and_just() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = (0i64..7).generate(&mut rng);
            assert!((0..7).contains(&v));
            let (a, b, c) = (0i64..5, 0u8..2, -4i32..0).generate(&mut rng);
            assert!((0..5).contains(&a) && b < 2 && (-4..0).contains(&c));
            let doubled = (1i64..10).prop_map(|x| 2 * x).generate(&mut rng);
            assert!(doubled % 2 == 0 && (2..20).contains(&doubled));
            assert_eq!(Just("fixed").generate(&mut rng), "fixed");
        }
    }
}
