//! Offline drop-in replacement for the subset of `proptest` this
//! workspace uses.
//!
//! The build container cannot reach crates.io, so the real proptest is
//! unavailable. This shim keeps every `proptest!` block in the workspace
//! compiling and *meaningful*: strategies generate seeded pseudo-random
//! inputs and each property runs for a configurable number of cases.
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case reports its inputs via the panic
//!   message of the assertion that fired, unminimized;
//! * **fixed seeding** — cases derive from a per-test deterministic seed
//!   (test name hash × case index) so CI runs are reproducible;
//! * **subset API** — integer range strategies, tuples, `prop_map`,
//!   `collection::{vec, hash_set}`, `Just`, `prop_assert!`,
//!   `prop_assert_eq!`, `ProptestConfig::with_cases`, `TestCaseError`.

pub mod strategy;

// The `proptest!` expansion needs an RNG without forcing every consumer to
// also depend on `rand` directly.
#[doc(hidden)]
pub use rand as __rand;

pub mod test_runner {
    use std::fmt;

    /// Runner configuration (`proptest::test_runner::Config` subset).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the exact-DP heavy
            // properties in this workspace fast on small containers while
            // still exercising a meaningful input spread.
            Config { cases: 64 }
        }
    }

    /// A rejected or failed test case (`proptest::test_runner::TestCaseError`
    /// subset).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property does not hold; the payload explains why.
        Fail(String),
    }

    impl TestCaseError {
        /// Marks the current case as a failure.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(reason) => write!(f, "{reason}"),
            }
        }
    }
}

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Size specification: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl SizeRange {
        fn sample(self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..self.hi)
        }
    }

    /// Strategy producing `Vec`s of `element` with a size drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy producing `HashSet`s (distinct elements) of `element`.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = HashSet::with_capacity(target);
            // Distinctness needs retries; bail out rather than spin when the
            // element domain is too small for the requested size.
            let mut attempts = 0usize;
            while out.len() < target {
                out.insert(self.element.generate(rng));
                attempts += 1;
                assert!(
                    attempts < 100 * (target + 1),
                    "hash_set strategy could not reach {target} distinct elements"
                );
            }
            out
        }
    }
}

/// Everything a `proptest!` block needs in scope.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]`-able function running the body over generated cases.
///
/// Failing assertions (`prop_assert!` and friends) report the case number;
/// inputs are not shrunk.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::Config as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            // Deterministic per-test stream: hash the test name into the
            // seed so sibling properties see different inputs.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in stringify!($name).bytes() {
                seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            for case in 0..config.cases as u64 {
                let mut rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        seed.wrapping_add(case),
                    );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("property {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )*};
}

/// `assert!` that fails the current proptest case instead of panicking
/// directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking
/// directly.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Sanity: generated values respect their strategies.
        #[test]
        fn ranges_and_tuples(a in 0i64..10, (b, c) in (5u32..6, -3i64..3)) {
            prop_assert!((0..10).contains(&a));
            prop_assert_eq!(b, 5);
            prop_assert!((-3..3).contains(&c));
        }

        #[test]
        fn vec_and_map_compose(
            v in crate::collection::vec((0i64..100, 0i64..100), 2..7),
            w in crate::collection::vec(0u16..4, 3),
        ) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
            let sums = crate::collection::vec((0i64..5, 0i64..5).prop_map(|(x, y)| x + y), 4);
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
            for s in Strategy::generate(&sums, &mut rng) {
                prop_assert!((0..10).contains(&s));
            }
        }

        #[test]
        fn hash_sets_are_distinct(s in crate::collection::hash_set(0i64..50, 5..6)) {
            prop_assert_eq!(s.len(), 5);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]
            fn inner(x in 0i64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
