//! Offline drop-in replacement for the subset of `rand` 0.8 this workspace
//! uses.
//!
//! The build container has no network access and no vendored registry, so
//! the workspace cannot depend on crates.io. Every consumer in this repo
//! only needs deterministic, seeded generation (`StdRng::seed_from_u64`,
//! `gen_range`, `gen_bool`), which this crate provides with a
//! xoshiro256++ generator seeded through SplitMix64 — the same
//! construction the real `rand_chacha`-backed `StdRng` guarantees
//! (deterministic per seed), though the concrete stream differs.
//!
//! Only the APIs the workspace calls are implemented; anything else is an
//! intentional compile error so accidental reliance on unimplemented
//! behavior is caught immediately.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers (`rand::Rng` subset).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive integer ranges).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 high bits give a uniform double in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniform sample (`rand::distributions`
/// machinery reduced to the integer cases the workspace needs).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// i128 spans can exceed u128 in principle; the workspace only samples small
// i128 ranges, so route them through the same path with a width assertion.
impl SampleRange<i128> for Range<i128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> i128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.checked_sub(self.start).expect("i128 range too wide") as u128;
        let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
        self.start + draw as i128
    }
}

/// Named generators (`rand::rngs` subset).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator: xoshiro256++ with SplitMix64 seed
    /// expansion. Statistically solid for the synthetic-workload and
    /// property-test duty it serves here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let first: Vec<i64> = (0..10).map(|_| c.gen_range(0..1_000_000)).collect();
        let mut a = StdRng::seed_from_u64(7);
        let other: Vec<i64> = (0..10).map(|_| a.gen_range(0..1_000_000)).collect();
        assert_ne!(first, other);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-17i64..42);
            assert!((-17..42).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn range_samples_cover_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn i128_ranges_sample() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = rng.gen_range(-1000i128..1000);
            assert!((-1000..1000).contains(&v));
        }
    }
}
